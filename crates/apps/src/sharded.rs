//! Multi-device sharded execution: hash-prefix sharding with a host router.
//!
//! The paper targets one GPU; real deployments shard a larger-than-memory
//! table across several devices. This module generalizes the seven §VI
//! applications to N simulated devices, each owning the hash-prefix slice
//! `shard = hash >> (64 - log2(N))` of the key space (see
//! [`sepo_core::shard`]). The pieces:
//!
//! * [`record_key_hashes`] — per-application key enumeration: the host-side
//!   mirror of each kernel's emit loop, producing the FNV-1a hash of every
//!   key a record will emit (the same hash the device insert path uses, so
//!   routing and storage agree bit for bit).
//! * [`ShardRouter`] — the host-side batching router: splits a [`Dataset`]
//!   into per-shard sub-datasets. A record is replicated to every shard
//!   owning at least one of its keys; each shard's replica re-runs the full
//!   task but the table's ownership filter drops foreign keys, so pair
//!   numbering (and therefore postponement resume points) stays identical
//!   to the unsharded run while each key is stored exactly once.
//! * [`run_app_sharded`] — drives one application over N shards, each with
//!   its own executor (device memory, warp pool, eviction pipe) and its own
//!   SEPO table slice, concurrently on the shared worker pool. The merged
//!   result is the [`sepo_core::canonical_image`], which is invariant
//!   across shard counts — N=1 anchors correctness.

use crate::common::{AppConfig, AppRun};
use crate::runner::run_app;
use gpu_sim::executor::Executor;
use parking_lot::Mutex;
use sepo_core::config::{Combiner, Organization};
use sepo_core::hash::fnv1a;
use sepo_core::shard::{audit_ownership, shard_bits};
use sepo_core::table::SepoTable;
use sepo_core::{canonical_image, shard_of, shard_of_key, ShardSpec};
use sepo_datagen::geo::parse_article;
use sepo_datagen::html::parse_page;
use sepo_datagen::patents::parse_citation;
use sepo_datagen::ratings::{pair_key, parse_movie};
use sepo_datagen::weblog::parse_url;
use sepo_datagen::{App, Dataset};

/// Table organization each application uses (the Table I "mode" column).
pub fn organization_of(app: App) -> Organization {
    match app {
        App::PageViewCount | App::Netflix | App::WordCount => {
            Organization::Combining(Combiner::Add)
        }
        App::DnaAssembly => Organization::Combining(Combiner::Or),
        App::InvertedIndex | App::PatentCitation | App::GeoLocation => Organization::MultiValued,
    }
}

/// Append the FNV-1a hash of every key `record` emits in `app`'s kernel.
///
/// Mirrors each kernel's emit loop exactly (same parse, same key bytes) so
/// a record is routed to precisely the shards that will store one of its
/// keys. Malformed records emit no keys and leave `out` untouched.
pub fn record_key_hashes(app: App, record: &[u8], out: &mut Vec<u64>) {
    match app {
        App::PageViewCount => {
            if let Some(url) = parse_url(record) {
                out.push(fnv1a(url));
            }
        }
        App::InvertedIndex => {
            let (_path, links) = parse_page(record);
            out.extend(links.iter().map(|link| fnv1a(link)));
        }
        App::DnaAssembly => {
            let read = record.strip_suffix(b"\n").unwrap_or(record);
            if read.len() >= crate::dna::K {
                out.extend(
                    (0..=read.len() - crate::dna::K).map(|i| fnv1a(&read[i..i + crate::dna::K])),
                );
            }
        }
        App::Netflix => {
            if let Some((_movie, raters)) = parse_movie(record) {
                for i in 0..raters.len() {
                    for j in i + 1..raters.len() {
                        out.push(fnv1a(&pair_key(raters[i].0, raters[j].0)));
                    }
                }
            }
        }
        App::WordCount => {
            out.extend(crate::wordcount::words(record).map(fnv1a));
        }
        App::PatentCitation => {
            if let Some((_citing, cited)) = parse_citation(record) {
                out.push(fnv1a(cited));
            }
        }
        App::GeoLocation => {
            if let Some((_article, location)) = parse_article(record) {
                out.push(fnv1a(location));
            }
        }
    }
}

/// Host-side batching router: assigns keys and records to owner shards.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    app: App,
    bits: u32,
}

impl ShardRouter {
    /// A router over `shard_count` devices (must be a power of two).
    pub fn new(app: App, shard_count: u32) -> Self {
        ShardRouter {
            app,
            bits: shard_bits(shard_count),
        }
    }

    pub fn shard_count(&self) -> u32 {
        1 << self.bits
    }

    /// Owner shard of a key hash.
    pub fn shard_of_hash(&self, hash: u64) -> u32 {
        shard_of(hash, self.bits)
    }

    /// Owner shard of a key.
    pub fn shard_of_key(&self, key: &[u8]) -> u32 {
        shard_of_key(key, self.bits)
    }

    /// Split a batch of keys into per-shard index lists. The concatenation
    /// of the lists is a permutation of `0..keys.len()`: every key routes
    /// to exactly one shard.
    pub fn split_keys(&self, keys: &[&[u8]]) -> Vec<Vec<usize>> {
        let mut slots: Vec<Vec<usize>> = vec![Vec::new(); self.shard_count() as usize];
        for (i, key) in keys.iter().enumerate() {
            slots[self.shard_of_key(key) as usize].push(i);
        }
        slots
    }

    /// Deduplicated, ascending owner shards of one record (empty when the
    /// record emits no keys).
    pub fn owners_of_record(&self, record: &[u8]) -> Vec<u32> {
        let mut hashes = Vec::new();
        record_key_hashes(self.app, record, &mut hashes);
        let mut owners: Vec<u32> = hashes.iter().map(|&h| self.shard_of_hash(h)).collect();
        owners.sort_unstable();
        owners.dedup();
        owners
    }

    /// Split `dataset` into one sub-dataset per shard, preserving record
    /// order. A record is replicated to every shard owning at least one of
    /// its keys; keyless (malformed) records go to shard 0 so every task
    /// still runs exactly once somewhere.
    pub fn split_dataset(&self, dataset: &Dataset) -> Vec<Dataset> {
        let n = self.shard_count() as usize;
        let mut subsets: Vec<Dataset> = vec![Dataset::new(); n];
        let mut hashes = Vec::new();
        let mut owners: Vec<u32> = Vec::new();
        for record in dataset.records() {
            hashes.clear();
            record_key_hashes(self.app, record, &mut hashes);
            owners.clear();
            owners.extend(hashes.iter().map(|&h| self.shard_of_hash(h)));
            owners.sort_unstable();
            owners.dedup();
            if owners.is_empty() {
                subsets[0].push_record(record);
            } else {
                for &s in &owners {
                    subsets[s as usize].push_record(record);
                }
            }
        }
        subsets
    }
}

/// One application run over N shards: the per-shard runs plus the merged
/// canonical result image.
pub struct ShardedAppRun {
    /// Per-shard runs, shard order. Each table holds only its owned slice.
    pub shards: Vec<AppRun>,
    /// Records the router sent to each shard (replicas count per owner).
    pub routed_records: Vec<usize>,
    /// Canonical merged result image ([`sepo_core::canonical_image`]);
    /// byte-identical across shard counts for a given input.
    pub image: Vec<u8>,
}

impl ShardedAppRun {
    /// The slowest shard's iteration count (the sharded run's makespan is
    /// bounded by its slowest device).
    pub fn max_iterations(&self) -> u32 {
        self.shards
            .iter()
            .map(|r| r.iterations())
            .max()
            .unwrap_or(0)
    }
}

/// Canonical result image of a single unsharded run (the N=1 anchor that
/// sharded images are compared against).
pub fn unsharded_image(run: &AppRun) -> Vec<u8> {
    canonical_image(&[&run.table])
}

/// Run `app` over `dataset` sharded across `executors.len()` simulated
/// devices (one config + one executor per shard; the count must be a power
/// of two).
///
/// Each shard gets the router's sub-dataset and a table pinned to its
/// [`ShardSpec`] slice; shards execute concurrently on the shared worker
/// pool, so their simulated kernels overlap in wall-clock time while each
/// shard stays internally deterministic. After the runs complete the
/// cross-shard ownership audit must pass (a stored foreign key is a router
/// or filter bug and panics), and the merged canonical image is computed.
pub fn run_app_sharded(
    app: App,
    dataset: &Dataset,
    cfgs: &[AppConfig],
    executors: &[Executor],
) -> ShardedAppRun {
    assert_eq!(
        cfgs.len(),
        executors.len(),
        "one AppConfig per shard executor"
    );
    assert!(!executors.is_empty(), "at least one shard required");
    let n = executors.len() as u32;
    let router = ShardRouter::new(app, n);
    let subsets = router.split_dataset(dataset);
    // Pin each shard's table to its slice of the key space. Resolving the
    // table config here (instead of inside each app) keeps the seven app
    // drivers shard-oblivious: they see an explicit table override.
    let shard_cfgs: Vec<AppConfig> = cfgs
        .iter()
        .enumerate()
        .map(|(i, cfg)| {
            let spec = ShardSpec::new(i as u32, n);
            let table = cfg
                .table_config(organization_of(app))
                .with_shard(Some(spec));
            let mut cfg = cfg.clone();
            cfg.table = Some(table);
            cfg
        })
        .collect();
    let cells: Vec<Mutex<Option<AppRun>>> = (0..n as usize).map(|_| Mutex::new(None)).collect();
    gpu_sim::pool::scope(|s| {
        for (i, cell) in cells.iter().enumerate() {
            let subset = &subsets[i];
            let cfg = &shard_cfgs[i];
            let exec = &executors[i];
            s.spawn(move || {
                *cell.lock() = Some(run_app(app, subset, cfg, exec));
            });
        }
    });
    let shards: Vec<AppRun> = cells
        .into_iter()
        .map(|c| c.into_inner().expect("shard run completed"))
        .collect();
    let tables: Vec<&SepoTable> = shards.iter().map(|r| &r.table).collect();
    if let Err(e) = audit_ownership(&tables) {
        panic!("cross-shard ownership audit failed: {e}");
    }
    let image = canonical_image(&tables);
    ShardedAppRun {
        routed_records: subsets.iter().map(|d| d.len()).collect(),
        shards,
        image,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_executor;

    fn sharded_image(app: App, ds: &Dataset, heap: u64, shards: u32) -> Vec<u8> {
        let cfgs: Vec<AppConfig> = (0..shards).map(|_| AppConfig::new(heap)).collect();
        let execs: Vec<Executor> = (0..shards).map(|_| test_executor().0).collect();
        let run = run_app_sharded(app, ds, &cfgs, &execs);
        assert_eq!(run.shards.len(), shards as usize);
        run.image
    }

    #[test]
    fn sharded_matches_unsharded_for_every_app() {
        for app in App::ALL {
            let ds = app.generate(0, 32_768);
            let (exec, _) = test_executor();
            let reference = run_app(app, &ds, &AppConfig::new(8 << 20), &exec);
            let want = unsharded_image(&reference);
            for shards in [1, 2, 4] {
                let got = sharded_image(app, &ds, 8 << 20, shards);
                assert_eq!(got, want, "{} diverged at {} shards", app.name(), shards);
            }
        }
    }

    #[test]
    fn sharded_matches_unsharded_under_memory_pressure() {
        // Tiny heaps force multi-iteration SEPO runs on every shard; the
        // merged image must still be byte-identical, and sharding must cut
        // the per-shard iteration count (the weak-scaling effect).
        for (app, scale, heap) in [
            (App::PageViewCount, 8_192u64, 16 * 1024u64),
            (App::InvertedIndex, 16_384, 24 * 1024),
        ] {
            let ds = app.generate(0, scale);
            let (exec, _) = test_executor();
            let reference = run_app(app, &ds, &AppConfig::new(heap), &exec);
            assert!(
                reference.iterations() > 1,
                "{} must iterate at {heap}B",
                app.name()
            );
            let want = unsharded_image(&reference);
            let cfgs: Vec<AppConfig> = (0..4).map(|_| AppConfig::new(heap)).collect();
            let execs: Vec<Executor> = (0..4).map(|_| test_executor().0).collect();
            let sharded = run_app_sharded(app, &ds, &cfgs, &execs);
            assert_eq!(sharded.image, want, "{} diverged", app.name());
            assert!(
                sharded.max_iterations() <= reference.iterations(),
                "{}: sharding must not add iterations ({} > {})",
                app.name(),
                sharded.max_iterations(),
                reference.iterations()
            );
        }
    }

    #[test]
    fn router_replicates_multi_key_records_to_every_owner() {
        let ds = App::WordCount.generate(0, 32_768);
        let router = ShardRouter::new(App::WordCount, 4);
        let subsets = router.split_dataset(&ds);
        let routed: usize = subsets.iter().map(|d| d.len()).sum();
        assert!(routed >= ds.len(), "every record routes somewhere");
        // Each replica must carry at least one key its shard owns, and
        // every shard owning a key of a record must hold a replica.
        let mut hashes = Vec::new();
        for record in ds.records() {
            hashes.clear();
            record_key_hashes(App::WordCount, record, &mut hashes);
            let owners = router.owners_of_record(record);
            for (s, subset) in subsets.iter().enumerate() {
                let held = subset.records().any(|r| r == record);
                let owns = owners.contains(&(s as u32));
                // A record identical to another may appear in shards owned
                // by either copy; only check the "must hold" direction.
                if owns {
                    assert!(held, "owner shard {s} missing a replica");
                }
            }
        }
    }

    #[test]
    fn keyless_records_route_to_shard_zero() {
        let mut ds = Dataset::new();
        ds.push_record(b"not a weblog line\n");
        let router = ShardRouter::new(App::PageViewCount, 4);
        assert!(router.owners_of_record(ds.record(0)).is_empty());
        let subsets = router.split_dataset(&ds);
        assert_eq!(subsets[0].len(), 1);
        assert!(subsets[1..].iter().all(|d| d.is_empty()));
    }

    #[test]
    fn split_keys_is_a_permutation_of_the_batch() {
        let keys: Vec<Vec<u8>> = (0..500).map(|i| format!("key-{i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let router = ShardRouter::new(App::PageViewCount, 8);
        let slots = router.split_keys(&refs);
        assert_eq!(slots.len(), 8);
        let mut all: Vec<usize> = slots.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..keys.len()).collect::<Vec<_>>());
        for (s, slot) in slots.iter().enumerate() {
            for &i in slot {
                assert_eq!(router.shard_of_key(&keys[i]), s as u32);
            }
        }
    }

    #[test]
    fn dna_enumerator_mirrors_the_kernel_kmers() {
        let read = b"ACGTACGTACGTACGTACGT\n"; // 20 bases, 5 k-mers at K=16
        let mut hashes = Vec::new();
        record_key_hashes(App::DnaAssembly, read, &mut hashes);
        assert_eq!(hashes.len(), 5);
        let stripped = &read[..read.len() - 1];
        assert_eq!(hashes[0], fnv1a(&stripped[0..16]));
        assert_eq!(hashes[4], fnv1a(&stripped[4..20]));
        // Short reads emit nothing, matching the kernel's early return.
        hashes.clear();
        record_key_hashes(App::DnaAssembly, b"ACGT\n", &mut hashes);
        assert!(hashes.is_empty());
    }
}
