//! Inverted Index: multi-valued grouping with heavy divergence (§IV-B).
//!
//! Takes HTML pages and outputs a 1:N mapping from hyperlinks (keys) to the
//! pages containing them (values) — the paper's Fig. 3 example. One task
//! (page) emits one pair per link, resuming mid-page after postponement.
//!
//! The paper notes Inverted Index "has a long switch-case block in its core
//! logic, which causes a high degree of thread divergence in GPUs" (§VI-B).
//! The kernel models that by declaring a branch class per parser path
//! (derived from page structure), so warps whose lanes parse structurally
//! different pages serialize.

use crate::common::{AppConfig, AppRun};
use gpu_sim::executor::Executor;
use gpu_sim::Charge;
use sepo_core::config::Organization;
use sepo_core::sepo::SepoDriver;
use sepo_core::table::SepoTable;
use sepo_datagen::html::parse_page;
use sepo_datagen::Dataset;
use sepo_mapreduce::Emitter;
use std::collections::HashMap;

/// Run Inverted Index over `dataset` on the SEPO substrate.
pub fn run(dataset: &Dataset, cfg: &AppConfig, executor: &Executor) -> AppRun {
    let table = SepoTable::new(
        cfg.table_config(Organization::MultiValued),
        cfg.heap_bytes,
        executor.metrics().clone(),
    );
    let outcome = {
        let driver = SepoDriver::new(&table, executor).with_config(cfg.driver.clone());
        driver.run(
            dataset.len(),
            |t| dataset.record_bytes(t),
            |t, start, lane| {
                let record = dataset.record(t);
                // HTML scanning is branch-heavy: ~6 units per byte, plus a
                // divergent dispatch whose path depends on page structure.
                lane.compute(12 * record.len() as u64);
                let (path, links) = parse_page(record);
                lane.branch_class((links.len() % 16) as u32);
                let mut emitter = Emitter::new(&table, lane, start);
                for link in links {
                    if !emitter.emit_grouped(link, &path) {
                        break;
                    }
                }
                emitter.finish()
            },
        )
    };
    table.finalize();
    AppRun { outcome, table }
}

/// Sequential reference implementation (verification oracle). Values are
/// returned sorted per key.
pub fn reference(dataset: &Dataset) -> HashMap<Vec<u8>, Vec<Vec<u8>>> {
    let mut index: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
    for rec in dataset.records() {
        let (path, links) = parse_page(rec);
        for link in links {
            index.entry(link.to_vec()).or_default().push(path.clone());
        }
    }
    for v in index.values_mut() {
        v.sort();
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_executor;
    use sepo_datagen::html::{generate, HtmlConfig};

    fn corpus(bytes: u64) -> Dataset {
        generate(
            &HtmlConfig {
                target_bytes: bytes,
                n_links: Some(300),
                ..Default::default()
            },
            21,
        )
    }

    fn normalized(run: &AppRun) -> HashMap<Vec<u8>, Vec<Vec<u8>>> {
        run.table
            .collect_multivalued()
            .into_iter()
            .map(|(k, mut vs)| {
                vs.sort();
                (k, vs)
            })
            .collect()
    }

    #[test]
    fn matches_reference_with_ample_memory() {
        let ds = corpus(80_000);
        let (exec, _) = test_executor();
        let run = run(&ds, &AppConfig::new(1 << 21), &exec);
        assert_eq!(run.iterations(), 1);
        assert_eq!(normalized(&run), reference(&ds));
    }

    #[test]
    fn matches_reference_under_memory_pressure() {
        let ds = corpus(120_000);
        let (exec, _) = test_executor();
        let run = run(&ds, &AppConfig::new(24 * 1024), &exec);
        assert!(run.iterations() > 1, "24 KiB heap must iterate");
        assert_eq!(normalized(&run), reference(&ds));
    }

    #[test]
    fn records_divergence() {
        let ds = corpus(60_000);
        let (exec, metrics) = test_executor();
        let _ = run(&ds, &AppConfig::new(1 << 21), &exec);
        assert!(
            metrics.snapshot().divergence_events > 0,
            "structurally varied pages must diverge"
        );
    }
}
