//! Page View Count input: web-server access logs.
//!
//! One request per line; the PVC application extracts the URL and inserts
//! `<url, 1>` (§III-B). URL popularity is Zipf(0.9) over a URL universe
//! sized so the final hash table holds a few records per distinct URL —
//! PVC's table grows to a large fraction of its input (Table III's trace
//! reaches 1.2 GB), which is what makes it the paper's stress case for
//! larger-than-memory operation.

use crate::dataset::Dataset;
use crate::rng::Rng;
use crate::zipf::Zipf;

/// Configuration for the web-log generator.
#[derive(Debug, Clone)]
pub struct WeblogConfig {
    /// Approximate total size in bytes.
    pub target_bytes: u64,
    /// Distinct URLs; `None` derives one distinct URL per ~3 requests.
    pub n_urls: Option<usize>,
    /// Zipf exponent of URL popularity.
    pub zipf_exponent: f64,
}

impl Default for WeblogConfig {
    fn default() -> Self {
        WeblogConfig {
            target_bytes: 1 << 20,
            n_urls: None,
            zipf_exponent: 0.9,
        }
    }
}

/// Average generated line length, used to derive the URL universe size.
const APPROX_LINE: u64 = 95;

/// Render the URL with rank `r` (unique per rank, realistic shape/length).
pub fn url(rank: usize) -> String {
    let site = rank % 97;
    let section = (rank / 97) % 23;
    format!("http://site{site:02}.example.com/s{section:02}/page-{rank:08x}.html")
}

/// Generate a web-log dataset.
pub fn generate(cfg: &WeblogConfig, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let n_requests = (cfg.target_bytes / APPROX_LINE).max(1);
    let n_urls = cfg
        .n_urls
        .unwrap_or_else(|| (n_requests / 3).max(1) as usize);
    let zipf = Zipf::new(n_urls, cfg.zipf_exponent);
    let mut ds = Dataset::new();
    let mut line = String::new();
    while ds.size_bytes() < cfg.target_bytes {
        let rank = zipf.sample(&mut rng);
        let ip = rng.below(256 * 256);
        let status = if rng.below(50) == 0 { 404 } else { 200 };
        let size = rng.range(200, 40_000);
        line.clear();
        line.push_str(&format!(
            "10.0.{}.{} GET {} {} {}\n",
            ip / 256,
            ip % 256,
            url(rank),
            status,
            size
        ));
        ds.push_record(line.as_bytes());
    }
    ds
}

/// Extract the URL field from a log record (the PVC parse step).
pub fn parse_url(record: &[u8]) -> Option<&[u8]> {
    let s = record;
    let get = s.windows(4).position(|w| w == b"GET ")? + 4;
    let rest = &s[get..];
    let end = rest.iter().position(|&b| b == b' ')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generates_parseable_lines() {
        let ds = generate(
            &WeblogConfig {
                target_bytes: 50_000,
                ..Default::default()
            },
            1,
        );
        assert!(ds.len() > 400);
        for rec in ds.records() {
            let url = parse_url(rec).expect("every line has a URL");
            assert!(url.starts_with(b"http://site"));
        }
    }

    #[test]
    fn url_universe_is_respected_and_skewed() {
        let ds = generate(
            &WeblogConfig {
                target_bytes: 200_000,
                n_urls: Some(500),
                zipf_exponent: 1.0,
            },
            2,
        );
        let mut counts: HashMap<Vec<u8>, u32> = HashMap::new();
        for rec in ds.records() {
            *counts.entry(parse_url(rec).unwrap().to_vec()).or_default() += 1;
        }
        assert!(counts.len() <= 500);
        let max = *counts.values().max().unwrap();
        let total: u32 = counts.values().sum();
        assert!(max as f64 / total as f64 > 0.05);
    }

    #[test]
    fn urls_are_unique_per_rank() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..10_000 {
            assert!(seen.insert(url(r)), "duplicate url for rank {r}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WeblogConfig {
            target_bytes: 10_000,
            ..Default::default()
        };
        assert_eq!(generate(&cfg, 9).bytes, generate(&cfg, 9).bytes);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_url(b"no verb here").is_none());
        assert!(parse_url(b"GET http://x").is_none()); // no trailing space
    }
}
