//! DNA Assembly input: short reads from a synthetic genome.
//!
//! The application merges DNA fragments to reconstruct a larger sequence
//! (Meraculous-style \[2\]): each read is decomposed into k-mers, and the
//! hash table stores `<k-mer, edge bits>` — the set of observed predecessor
//! and successor bases — combined with bitwise OR (the *combining* method).
//! The generator synthesizes a random genome and samples overlapping reads
//! at a configurable coverage, so k-mers genuinely repeat across reads.

use crate::dataset::Dataset;
use crate::rng::Rng;

/// Configuration for the read generator.
#[derive(Debug, Clone)]
pub struct DnaConfig {
    /// Approximate total size in bytes.
    pub target_bytes: u64,
    /// Read length in bases.
    pub read_len: usize,
    /// Mean sequencing coverage (reads overlapping each genome position).
    pub coverage: f64,
    /// Per-base sequencing error rate (substitutions).
    pub error_rate: f64,
}

impl Default for DnaConfig {
    fn default() -> Self {
        DnaConfig {
            target_bytes: 1 << 20,
            read_len: 100,
            coverage: 8.0,
            error_rate: 0.001,
        }
    }
}

const BASES: [u8; 4] = *b"ACGT";

/// Generate a read dataset. One record per read line.
pub fn generate(cfg: &DnaConfig, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let read_len = cfg.read_len.max(8);
    // target reads ≈ target_bytes / (read_len + 1); genome sized so that
    // coverage = reads * read_len / genome_len.
    let n_reads = (cfg.target_bytes / (read_len as u64 + 1)).max(1);
    let genome_len =
        ((n_reads as f64 * read_len as f64 / cfg.coverage.max(0.1)) as usize).max(read_len + 1);
    let mut genome = Vec::with_capacity(genome_len);
    for _ in 0..genome_len {
        genome.push(BASES[rng.below(4) as usize]);
    }
    let mut ds = Dataset::new();
    let mut read = Vec::with_capacity(read_len + 1);
    while ds.size_bytes() < cfg.target_bytes {
        let start = rng.below((genome_len - read_len) as u64) as usize;
        read.clear();
        read.extend_from_slice(&genome[start..start + read_len]);
        if cfg.error_rate > 0.0 {
            for b in read.iter_mut() {
                if rng.f64() < cfg.error_rate {
                    *b = BASES[rng.below(4) as usize];
                }
            }
        }
        read.push(b'\n');
        ds.push_record(&read);
    }
    ds
}

/// Encode base byte → 2-bit code (A=0 C=1 G=2 T=3); `None` for non-bases.
#[inline]
pub fn base_code(b: u8) -> Option<u8> {
    match b {
        b'A' => Some(0),
        b'C' => Some(1),
        b'G' => Some(2),
        b'T' => Some(3),
        _ => None,
    }
}

/// The de Bruijn edge bits for a k-mer occurrence: bits 0-3 mark the
/// predecessor base (if any), bits 4-7 the successor base. OR-combining
/// occurrences accumulates the k-mer's full edge set — the value the DNA
/// application stores.
pub fn edge_bits(prev: Option<u8>, next: Option<u8>) -> u64 {
    let mut bits = 0u64;
    if let Some(p) = prev.and_then(base_code) {
        bits |= 1 << p;
    }
    if let Some(n) = next.and_then(base_code) {
        bits |= 1 << (4 + n);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn reads_are_well_formed() {
        let cfg = DnaConfig {
            target_bytes: 50_000,
            ..Default::default()
        };
        let ds = generate(&cfg, 1);
        assert!(ds.len() > 400);
        for rec in ds.records() {
            assert_eq!(rec.len(), 101);
            assert_eq!(rec[100], b'\n');
            assert!(rec[..100].iter().all(|b| BASES.contains(b)));
        }
    }

    #[test]
    fn coverage_produces_repeated_kmers() {
        let cfg = DnaConfig {
            target_bytes: 100_000,
            coverage: 10.0,
            error_rate: 0.0,
            ..Default::default()
        };
        let ds = generate(&cfg, 2);
        let k = 16;
        let mut counts: HashMap<&[u8], u32> = HashMap::new();
        for rec in ds.records() {
            let bases = &rec[..rec.len() - 1];
            for w in bases.windows(k) {
                *counts.entry(w).or_default() += 1;
            }
        }
        let repeated = counts.values().filter(|&&c| c > 1).count();
        assert!(
            repeated as f64 / counts.len() as f64 > 0.5,
            "high coverage must repeat most k-mers: {}/{}",
            repeated,
            counts.len()
        );
    }

    #[test]
    fn edge_bits_accumulate_under_or() {
        let occ1 = edge_bits(Some(b'A'), Some(b'C'));
        let occ2 = edge_bits(Some(b'G'), None);
        let merged = occ1 | occ2;
        assert_eq!(merged & 0xF, 0b0101); // predecessors A and G
        assert_eq!((merged >> 4) & 0xF, 0b0010); // successor C
        assert_eq!(edge_bits(None, None), 0);
    }

    #[test]
    fn base_codes() {
        assert_eq!(base_code(b'A'), Some(0));
        assert_eq!(base_code(b'T'), Some(3));
        assert_eq!(base_code(b'N'), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DnaConfig {
            target_bytes: 10_000,
            ..Default::default()
        };
        assert_eq!(generate(&cfg, 7).bytes, generate(&cfg, 7).bytes);
        assert_ne!(generate(&cfg, 7).bytes, generate(&cfg, 8).bytes);
    }
}
