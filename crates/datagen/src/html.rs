//! Inverted Index input: HTML documents with hyperlinks.
//!
//! Each record is one HTML page; the application scans it for
//! `<a href="...">` hyperlinks and inserts `<link URL, page path>` under
//! the multi-valued organization (§IV-B, Fig. 3). Link targets span a wide
//! length range ("URLs that are between 5 and thousands of characters",
//! §IV fn. 4) — precisely the variable-length-key case the dynamic
//! allocator exists for.

use crate::dataset::Dataset;
use crate::rng::Rng;
use crate::zipf::Zipf;

/// Configuration for the HTML corpus generator.
#[derive(Debug, Clone)]
pub struct HtmlConfig {
    /// Approximate total size in bytes.
    pub target_bytes: u64,
    /// Distinct link targets; `None` derives from volume.
    pub n_links: Option<usize>,
    /// Hyperlinks per page (mean).
    pub links_per_page: usize,
    /// Zipf exponent of link popularity.
    pub zipf_exponent: f64,
}

impl Default for HtmlConfig {
    fn default() -> Self {
        HtmlConfig {
            target_bytes: 1 << 20,
            n_links: None,
            links_per_page: 24,
            zipf_exponent: 0.8,
        }
    }
}

/// The link URL with rank `r`. Lengths vary from short hosts to long deep
/// paths, exercising variable-length keys.
pub fn link_url(rank: usize) -> String {
    let host = rank % 211;
    match rank % 5 {
        0 => format!("http://h{:05}.org", rank / 5),
        1 => format!("http://h{host:03}.org/a/{rank:x}"),
        2 => format!("http://h{host:03}.org/articles/{rank:08}/index.html"),
        3 => format!(
            "http://h{host:03}.org/very/deep/path/with/many/segments/{rank:010}/resource.html"
        ),
        _ => format!(
            "http://h{host:03}.org/search?q=term{}&page={}&session={:016x}&locale=en-us",
            rank % 1000,
            rank % 30,
            (rank as u64).wrapping_mul(0x9e3779b97f4a7c15)
        ),
    }
}

/// Generate an HTML corpus. One record per page.
pub fn generate(cfg: &HtmlConfig, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    // Rough page size: header/footer + links * ~90 bytes.
    let approx_page = 120 + cfg.links_per_page as u64 * 90;
    let n_pages = (cfg.target_bytes / approx_page).max(1);
    let n_links = cfg
        .n_links
        .unwrap_or(((n_pages as usize) * cfg.links_per_page / 6).max(1));
    let zipf = Zipf::new(n_links, cfg.zipf_exponent);
    let mut ds = Dataset::new();
    let mut page = String::new();
    let mut idx = 0usize;
    while ds.size_bytes() < cfg.target_bytes {
        page.clear();
        page.push_str("<html><head><title>page</title></head><body>\n");
        // Page path comment marks the record's identity for the app.
        page.push_str(&format!("<!--path:docs/doc{idx:08}.html-->\n"));
        let n =
            cfg.links_per_page.max(1) / 2 + rng.below(cfg.links_per_page.max(1) as u64) as usize;
        for _ in 0..n {
            let l = zipf.sample(&mut rng);
            page.push_str("<p>text <a href=\"");
            page.push_str(&link_url(l));
            page.push_str("\">anchor</a></p>\n");
        }
        page.push_str("</body></html>\n");
        ds.push_record(page.as_bytes());
        idx += 1;
    }
    ds
}

/// Parse a page record: returns `(page_path, link_urls)` — the Inverted
/// Index map step.
pub fn parse_page(record: &[u8]) -> (Vec<u8>, Vec<&[u8]>) {
    let path = find_between(record, b"<!--path:", b"-->").unwrap_or(b"unknown");
    let mut links = Vec::new();
    let mut rest = record;
    while let Some(start) = find(rest, b"<a href=\"") {
        let from = start + 9;
        let Some(len) = rest[from..].iter().position(|&b| b == b'"') else {
            break;
        };
        links.push(&rest[from..from + len]);
        rest = &rest[from + len..];
    }
    (path.to_vec(), links)
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn find_between<'a>(haystack: &'a [u8], open: &[u8], close: &[u8]) -> Option<&'a [u8]> {
    let start = find(haystack, open)? + open.len();
    let len = find(&haystack[start..], close)?;
    Some(&haystack[start..start + len])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_parse_back() {
        let ds = generate(
            &HtmlConfig {
                target_bytes: 100_000,
                ..Default::default()
            },
            1,
        );
        assert!(ds.len() > 10);
        for (i, rec) in ds.records().enumerate() {
            let (path, links) = parse_page(rec);
            assert_eq!(path, format!("docs/doc{i:08}.html").as_bytes());
            assert!(!links.is_empty());
            for l in links {
                assert!(l.starts_with(b"http://h"));
            }
        }
    }

    #[test]
    fn link_lengths_vary_widely() {
        let lens: Vec<usize> = (0..100).map(|r| link_url(r).len()).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(min < 20, "shortest {min}");
        assert!(max > 70, "longest {max}");
    }

    #[test]
    fn links_unique_per_rank() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..5_000 {
            assert!(seen.insert(link_url(r)));
        }
    }

    #[test]
    fn popular_links_repeat_across_pages() {
        let ds = generate(
            &HtmlConfig {
                target_bytes: 150_000,
                n_links: Some(200),
                ..Default::default()
            },
            3,
        );
        let mut counts = std::collections::HashMap::new();
        for rec in ds.records() {
            for l in parse_page(rec).1 {
                *counts.entry(l.to_vec()).or_insert(0u32) += 1;
            }
        }
        assert!(counts.len() <= 200);
        assert!(counts.values().any(|&c| c > 10));
    }
}
