//! Word Count input: plain-text documents.
//!
//! "The input dataset of Word Count typically consists of text documents
//! which contain a limited number of distinct words no matter how large the
//! document is" (§VI-B) — the property that makes Word Count combine-heavy
//! and contention-bound on the GPU. The generator fixes the vocabulary size
//! independent of the target volume and draws words Zipf(1.05), matching
//! natural-language skew. Records are lines of roughly `line_words` words.

use crate::dataset::Dataset;
use crate::rng::Rng;
use crate::words;
use crate::zipf::Zipf;

/// Configuration for the text generator.
#[derive(Debug, Clone)]
pub struct TextConfig {
    /// Approximate total size in bytes.
    pub target_bytes: u64,
    /// Distinct words available (fixed regardless of volume).
    pub vocab_size: usize,
    /// Zipf exponent of word frequency.
    pub zipf_exponent: f64,
    /// Words per line (record).
    pub line_words: usize,
}

impl Default for TextConfig {
    fn default() -> Self {
        TextConfig {
            target_bytes: 1 << 20,
            vocab_size: 40_000,
            zipf_exponent: 1.05,
            line_words: 12,
        }
    }
}

/// Generate a text dataset.
pub fn generate(cfg: &TextConfig, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let vocab = words::vocabulary(cfg.vocab_size.max(1));
    let zipf = Zipf::new(vocab.len(), cfg.zipf_exponent);
    let mut ds = Dataset::new();
    let mut line = String::new();
    while ds.size_bytes() < cfg.target_bytes {
        line.clear();
        for w in 0..cfg.line_words.max(1) {
            if w > 0 {
                line.push(' ');
            }
            line.push_str(&vocab[zipf.sample(&mut rng)]);
        }
        line.push('\n');
        ds.push_record(line.as_bytes());
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hits_target_size_approximately() {
        let cfg = TextConfig {
            target_bytes: 100_000,
            ..Default::default()
        };
        let ds = generate(&cfg, 1);
        assert!(ds.size_bytes() >= 100_000);
        assert!(ds.size_bytes() < 110_000, "{}", ds.size_bytes());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TextConfig {
            target_bytes: 10_000,
            ..Default::default()
        };
        assert_eq!(generate(&cfg, 5).bytes, generate(&cfg, 5).bytes);
        assert_ne!(generate(&cfg, 5).bytes, generate(&cfg, 6).bytes);
    }

    #[test]
    fn records_are_lines_of_words() {
        let cfg = TextConfig {
            target_bytes: 5_000,
            line_words: 7,
            ..Default::default()
        };
        let ds = generate(&cfg, 2);
        for rec in ds.records() {
            let s = std::str::from_utf8(rec).unwrap();
            assert!(s.ends_with('\n'));
            assert_eq!(s.trim_end().split(' ').count(), 7);
        }
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let cfg = TextConfig {
            target_bytes: 200_000,
            vocab_size: 2_000,
            ..Default::default()
        };
        let ds = generate(&cfg, 3);
        let mut counts: HashMap<&str, u32> = HashMap::new();
        for rec in ds.records() {
            for w in std::str::from_utf8(rec).unwrap().split_whitespace() {
                *counts.entry(w).or_default() += 1;
            }
        }
        let total: u32 = counts.values().sum();
        let max = *counts.values().max().unwrap();
        // The hottest word ('the') should take a large share — the Word
        // Count contention driver.
        assert!(
            max as f64 / total as f64 > 0.08,
            "max share {}",
            max as f64 / total as f64
        );
        // Far fewer distinct words than tokens.
        assert!(counts.len() < total as usize / 10);
    }

    #[test]
    fn vocab_bounds_distinct_words() {
        let cfg = TextConfig {
            target_bytes: 50_000,
            vocab_size: 100,
            ..Default::default()
        };
        let ds = generate(&cfg, 4);
        let mut distinct = std::collections::HashSet::new();
        for rec in ds.records() {
            for w in std::str::from_utf8(rec).unwrap().split_whitespace() {
                distinct.insert(w.to_string());
            }
        }
        assert!(distinct.len() <= 100);
    }
}
