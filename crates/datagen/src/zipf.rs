//! Zipf-distributed rank sampling.
//!
//! Key popularity in the paper's workloads is heavily skewed — word
//! frequencies ("the number of occurrences of the word 'that' in a document
//! is high", §VI-B), URL hit counts, hyperlink popularity. A Zipf law with
//! exponent ≈ 1 is the standard model; the generators use this sampler so
//! the skew (and therefore the hash table's duplicate-key behaviour and
//! contention profile) is controlled and reproducible.

use crate::rng::Rng;

/// Zipf sampler over ranks `0..n` with exponent `s`: P(rank k) ∝ 1/(k+1)^s.
///
/// Implementation: precomputed cumulative distribution with binary search —
/// O(n) memory, O(log n) per sample, exact for any exponent including 0
/// (uniform).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Sampler over `n` ranks (n ≥ 1) with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `[0, n)`.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        // partition_point returns the first rank whose cumulative mass
        // reaches u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Expected probability of rank `k` (testing / analysis).
    pub fn prob(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_stay_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = Rng::new(1);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.prob(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(100, 1.0);
        for k in 1..100 {
            assert!(z.prob(k) < z.prob(k - 1));
        }
        // Rank 0 of a 1.0-exponent law over 100 ranks has ~19% of the mass.
        assert!(z.prob(0) > 0.15);
    }

    #[test]
    fn empirical_frequencies_match_probabilities() {
        let z = Zipf::new(50, 1.2);
        let mut rng = Rng::new(99);
        let mut counts = [0u32; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 20] {
            let emp = counts[k] as f64 / n as f64;
            let exp = z.prob(k);
            assert!(
                (emp - exp).abs() < 0.01 + exp * 0.1,
                "rank {k}: empirical {emp} vs expected {exp}"
            );
        }
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = Rng::new(0);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
