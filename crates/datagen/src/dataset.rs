//! The in-memory dataset format shared by all generators.
//!
//! A dataset is one contiguous byte blob (what the paper streams over PCIe
//! with BigKernel) plus explicit record boundaries (what the *input data
//! partitioner* of §V produces). Keeping boundaries explicit lets the SEPO
//! driver treat "task" = "record" without re-scanning for separators on the
//! device.

/// A generated input dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Raw input bytes.
    pub bytes: Vec<u8>,
    /// Start offset of each record; record `i` spans
    /// `offsets[i]..offsets[i+1]` (last record runs to the end).
    pub offsets: Vec<usize>,
}

impl Dataset {
    /// An empty dataset being built up.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn push_record(&mut self, record: &[u8]) {
        self.offsets.push(self.bytes.len());
        self.bytes.extend_from_slice(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Record `i` as a byte slice.
    #[inline]
    pub fn record(&self, i: usize) -> &[u8] {
        let start = self.offsets[i];
        let end = self.offsets.get(i + 1).copied().unwrap_or(self.bytes.len());
        &self.bytes[start..end]
    }

    /// Size of record `i` in bytes.
    #[inline]
    pub fn record_bytes(&self, i: usize) -> u64 {
        self.record(i).len() as u64
    }

    /// Iterate all records.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(move |i| self.record(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_records() {
        let mut d = Dataset::new();
        d.push_record(b"first");
        d.push_record(b"second record");
        d.push_record(b"");
        d.push_record(b"last");
        assert_eq!(d.len(), 4);
        assert_eq!(d.record(0), b"first");
        assert_eq!(d.record(1), b"second record");
        assert_eq!(d.record(2), b"");
        assert_eq!(d.record(3), b"last");
        assert_eq!(d.size_bytes(), 5 + 13 + 4);
        assert_eq!(d.record_bytes(1), 13);
    }

    #[test]
    fn records_iterator_matches_indexing() {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push_record(format!("rec-{i}").as_bytes());
        }
        let collected: Vec<&[u8]> = d.records().collect();
        assert_eq!(collected.len(), 10);
        assert_eq!(collected[7], b"rec-7");
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new();
        assert!(d.is_empty());
        assert_eq!(d.size_bytes(), 0);
        assert_eq!(d.records().count(), 0);
    }
}
