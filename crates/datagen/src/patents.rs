//! Patent Citation input: citation edges.
//!
//! The MapReduce application "produces a reverse patent citation directory"
//! (§VI-A): for each record `<citing cites cited>` it inserts
//! `<cited, citing>` under MAP_GROUP (multi-valued), grouping all citing
//! patents per cited patent. Citation in-degree follows a power law —
//! famous patents are cited by thousands — which the generator models with
//! a Zipf draw over the cited universe.

use crate::dataset::Dataset;
use crate::rng::Rng;
use crate::zipf::Zipf;

/// Configuration for the citation generator.
#[derive(Debug, Clone)]
pub struct PatentsConfig {
    /// Approximate total size in bytes.
    pub target_bytes: u64,
    /// Citable patent universe; `None` derives from volume.
    pub n_patents: Option<usize>,
    /// Zipf exponent of citation in-degree.
    pub zipf_exponent: f64,
}

impl Default for PatentsConfig {
    fn default() -> Self {
        PatentsConfig {
            target_bytes: 1 << 20,
            n_patents: None,
            zipf_exponent: 0.75,
        }
    }
}

const APPROX_LINE: u64 = 58;

/// Generate a citation dataset: lines of
/// `<citing> <cited> <year> <class> <country>`.
pub fn generate(cfg: &PatentsConfig, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let n_edges = (cfg.target_bytes / APPROX_LINE).max(1);
    let n_patents = cfg.n_patents.unwrap_or((n_edges / 4).max(2) as usize);
    let zipf = Zipf::new(n_patents, cfg.zipf_exponent);
    let mut ds = Dataset::new();
    let mut line = String::new();
    while ds.size_bytes() < cfg.target_bytes {
        // Citing patents are "newer": drawn uniformly; cited ones are
        // popularity-skewed. A patent cannot cite itself.
        let citing = rng.below(n_patents as u64);
        let mut cited = zipf.sample(&mut rng) as u64;
        if cited == citing {
            cited = (cited + 1) % n_patents as u64;
        }
        line.clear();
        let year = 1960 + (citing % 60);
        let class = cited % 500;
        let cc = ["us", "jp", "de", "kr", "cn", "fr"][(citing % 6) as usize];
        line.push_str(&format!(
            "{citing:08} {cited:08} {year} c{class:03} {cc} g{:02} t{:04} f{:03}\n",
            citing % 40,
            cited % 9000,
            (citing ^ cited) % 600,
        ));
        ds.push_record(line.as_bytes());
    }
    ds
}

/// Parse a citation record into `(citing, cited)` — the first two fields;
/// trailing metadata (year, class, country) is ignored.
pub fn parse_citation(record: &[u8]) -> Option<(&[u8], &[u8])> {
    let sp = record.iter().position(|&b| b == b' ')?;
    let citing = &record[..sp];
    let rest = &record[sp + 1..];
    let end = rest
        .iter()
        .position(|&b| b == b' ' || b == b'\n')
        .unwrap_or(rest.len());
    if citing.is_empty() || end == 0 {
        return None;
    }
    Some((citing, &rest[..end]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn edges_parse_back() {
        let ds = generate(
            &PatentsConfig {
                target_bytes: 40_000,
                ..Default::default()
            },
            1,
        );
        assert!(ds.len() > 700); // ~45-byte records over 40 KB
        for rec in ds.records() {
            let (citing, cited) = parse_citation(rec).unwrap();
            assert_eq!(citing.len(), 8);
            assert_eq!(cited.len(), 8);
            assert_ne!(citing, cited, "self-citation");
        }
    }

    #[test]
    fn in_degree_is_power_law_ish() {
        let ds = generate(
            &PatentsConfig {
                target_bytes: 100_000,
                n_patents: Some(1_000),
                zipf_exponent: 1.0,
            },
            2,
        );
        let mut indeg: HashMap<Vec<u8>, u32> = HashMap::new();
        for rec in ds.records() {
            let (_, cited) = parse_citation(rec).unwrap();
            *indeg.entry(cited.to_vec()).or_default() += 1;
        }
        let max = *indeg.values().max().unwrap();
        let mean = indeg.values().sum::<u32>() as f64 / indeg.len() as f64;
        assert!(max as f64 > 10.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PatentsConfig {
            target_bytes: 5_000,
            ..Default::default()
        };
        assert_eq!(generate(&cfg, 4).bytes, generate(&cfg, 4).bytes);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_citation(b"nospace").is_none());
        assert!(parse_citation(b" x").is_none());
    }
}
