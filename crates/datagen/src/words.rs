//! Pseudo-word vocabulary.
//!
//! Generates unique, pronounceable-ish words where low ranks (the frequent
//! words under the Zipf draws) get short strings — mirroring natural
//! language, where frequent words are short. Words are syllable encodings
//! of the rank, so they are unique by construction and need no
//! deduplication.

const SYLLABLES: [&str; 64] = [
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "fa", "fe", "fi", "fo", "fu", "ga",
    "ge", "gi", "go", "gu", "ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu", "ma", "me",
    "mi", "mo", "mu", "na", "ne", "ni", "no", "nu", "pa", "pe", "pi", "po", "pu", "ra", "re", "ri",
    "ro", "ru", "sa", "se", "si", "so", "su", "ta", "te", "ti", "tu", "zu", "va", "ve", "vi", "vo",
];

/// The 16 most frequent ranks map to real English stop words, matching the
/// paper's observation that words like "that" dominate Word Count inputs.
const STOP_WORDS: [&str; 16] = [
    "the", "of", "and", "to", "a", "in", "that", "is", "was", "he", "for", "it", "with", "as",
    "his", "on",
];

/// The word for `rank`. Unique across ranks.
pub fn word(rank: usize) -> String {
    if rank < STOP_WORDS.len() {
        return STOP_WORDS[rank].to_string();
    }
    let mut n = rank - STOP_WORDS.len();
    let mut out = String::new();
    loop {
        out.push_str(SYLLABLES[n % 64]);
        n /= 64;
        if n == 0 {
            break;
        }
    }
    out
}

/// Materialize the first `n` words (generators cache this).
pub fn vocabulary(n: usize) -> Vec<String> {
    (0..n).map(word).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_unique() {
        let v = vocabulary(20_000);
        let set: HashSet<&String> = v.iter().collect();
        assert_eq!(set.len(), 20_000);
    }

    #[test]
    fn frequent_ranks_are_stop_words() {
        assert_eq!(word(0), "the");
        assert_eq!(word(6), "that");
    }

    #[test]
    fn words_grow_slowly_with_rank() {
        assert!(word(50).len() <= 4);
        assert!(word(5_000).len() <= 6);
        assert!(word(300_000).len() <= 8);
    }

    #[test]
    fn words_are_lowercase_ascii() {
        for rank in [0usize, 17, 999, 123_456] {
            assert!(word(rank).bytes().all(|b| b.is_ascii_lowercase()));
        }
    }
}
