//! The Table I dataset ladder.
//!
//! The paper evaluates seven applications, each on four input sizes
//! (Table I). Paper-scale sizes are in gigabytes; the harness divides them
//! by a global scale factor (matching `gpu_sim::SystemSpec::scaled`) so
//! the iteration behaviour — hash table several times larger than device
//! memory at the top sizes — is preserved while runs stay fast.

use crate::dataset::Dataset;
use crate::{dna, geo, html, patents, ratings, text, weblog};

/// The seven evaluation applications, in the paper's Table I order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    InvertedIndex,
    PageViewCount,
    DnaAssembly,
    Netflix,
    WordCount,
    PatentCitation,
    GeoLocation,
}

impl App {
    /// All applications, Table I order.
    pub const ALL: [App; 7] = [
        App::InvertedIndex,
        App::PageViewCount,
        App::DnaAssembly,
        App::Netflix,
        App::WordCount,
        App::PatentCitation,
        App::GeoLocation,
    ];

    /// The three MapReduce applications (evaluated against Phoenix++ and
    /// MapCG).
    pub const MAPREDUCE: [App; 3] = [App::WordCount, App::PatentCitation, App::GeoLocation];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            App::InvertedIndex => "Inverted Index",
            App::PageViewCount => "Page View Count",
            App::DnaAssembly => "DNA Assembly",
            App::Netflix => "Netflix",
            App::WordCount => "Word Count (MapReduce)",
            App::PatentCitation => "Patent Citation (MapReduce)",
            App::GeoLocation => "Geo Location (MapReduce)",
        }
    }

    /// Table I input sizes at paper scale, in megabytes, datasets #1–#4.
    pub fn table1_mb(&self) -> [u64; 4] {
        match self {
            App::InvertedIndex => [2_000, 3_000, 4_000, 5_000],
            App::PageViewCount => [600, 2_200, 3_800, 5_800],
            App::DnaAssembly => [2_000, 4_000, 6_000, 8_000],
            App::Netflix => [1_600, 3_200, 4_800, 6_400],
            App::WordCount => [200, 2_000, 3_000, 4_000],
            App::PatentCitation => [200, 2_000, 3_400, 4_800],
            App::GeoLocation => [200, 1_800, 3_200, 5_000],
        }
    }

    /// Dataset size in bytes for dataset index `idx` (0-based) divided by
    /// `scale`.
    pub fn dataset_bytes(&self, idx: usize, scale: u64) -> u64 {
        assert!(idx < 4, "Table I has four datasets");
        self.table1_mb()[idx] * 1_000_000 / scale.max(1)
    }

    /// Generate dataset `idx` at 1/`scale` of paper size, deterministically
    /// seeded per (app, idx).
    pub fn generate(&self, idx: usize, scale: u64) -> Dataset {
        let bytes = self.dataset_bytes(idx, scale);
        let seed = 0xC0FFEE ^ ((*self as u64) << 8) ^ idx as u64;
        match self {
            App::InvertedIndex => html::generate(
                &html::HtmlConfig {
                    target_bytes: bytes,
                    ..Default::default()
                },
                seed,
            ),
            App::PageViewCount => weblog::generate(
                &weblog::WeblogConfig {
                    target_bytes: bytes,
                    ..Default::default()
                },
                seed,
            ),
            // Coverage 64: distinct k-mers ≈ input/64, so the k-mer table
            // grows to a few multiples of the scaled device heap at the top
            // dataset sizes — the paper's multi-iteration regime.
            App::DnaAssembly => dna::generate(
                &dna::DnaConfig {
                    target_bytes: bytes,
                    coverage: 64.0,
                    error_rate: 0.0,
                    ..Default::default()
                },
                seed,
            ),
            // 8 raters per movie (28 pairs/record) over a compact, skewed
            // user universe so user pairs repeat — the combining workload.
            App::Netflix => ratings::generate(
                &ratings::RatingsConfig {
                    target_bytes: bytes,
                    raters_per_movie: 8,
                    n_users: Some(((bytes / 20_000) as usize).max(64)),
                    zipf_exponent: 1.0,
                },
                seed,
            ),
            // The vocabulary scales with the (scaled) volume, keeping the
            // paper's property that Word Count's table is small relative to
            // device memory while staying duplicate-heavy.
            App::WordCount => text::generate(
                &text::TextConfig {
                    target_bytes: bytes,
                    vocab_size: ((bytes / 500) as usize).clamp(500, 40_000),
                    ..Default::default()
                },
                seed,
            ),
            App::PatentCitation => patents::generate(
                &patents::PatentsConfig {
                    target_bytes: bytes,
                    ..Default::default()
                },
                seed,
            ),
            App::GeoLocation => geo::generate(
                &geo::GeoConfig {
                    target_bytes: bytes,
                    ..Default::default()
                },
                seed,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        assert_eq!(App::PageViewCount.table1_mb(), [600, 2_200, 3_800, 5_800]);
        assert_eq!(App::DnaAssembly.table1_mb(), [2_000, 4_000, 6_000, 8_000]);
        assert_eq!(App::WordCount.table1_mb()[0], 200);
    }

    #[test]
    fn sizes_scale_down() {
        let full = App::Netflix.dataset_bytes(3, 1);
        let scaled = App::Netflix.dataset_bytes(3, 256);
        assert_eq!(full, 6_400_000_000);
        assert_eq!(scaled, full / 256);
    }

    #[test]
    fn generation_hits_scaled_sizes() {
        // Heavy-ish test at a big scale divisor to stay fast.
        for app in App::ALL {
            let ds = app.generate(0, 4096);
            let want = app.dataset_bytes(0, 4096);
            assert!(
                ds.size_bytes() >= want && ds.size_bytes() < want + want / 5 + 4_096,
                "{}: got {} want ~{}",
                app.name(),
                ds.size_bytes(),
                want
            );
            assert!(!ds.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = App::WordCount.generate(1, 8192);
        let b = App::WordCount.generate(1, 8192);
        assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    #[should_panic(expected = "four datasets")]
    fn dataset_index_bounds() {
        let _ = App::WordCount.dataset_bytes(4, 1);
    }
}
