//! # sepo-datagen — synthetic datasets for the seven evaluation apps
//!
//! The paper evaluates on production-style corpora (web logs, HTML crawls,
//! DNA reads, Netflix ratings, patent citations, geotagged Wikipedia
//! articles) that are not redistributable. These generators produce seeded
//! synthetic equivalents with matched *hash-table-relevant* structure — the
//! number, size, and uniqueness distribution of keys — which is what drives
//! every behaviour the paper measures (duplicate-key combining, bucket
//! contention, variable-length allocation, table growth past device
//! memory).
//!
//! All generators are deterministic given a seed (own xoshiro256**
//! [`rng::Rng`], own [`zipf::Zipf`] sampler) and emit a [`dataset::Dataset`]:
//! a contiguous byte blob with explicit record boundaries, ready for the
//! SEPO driver's task decomposition. [`sizes::App`] carries the Table I
//! size ladder and per-app dispatch.

pub mod dataset;
pub mod dna;
pub mod geo;
pub mod html;
pub mod patents;
pub mod ratings;
pub mod rng;
pub mod sizes;
pub mod text;
pub mod weblog;
pub mod words;
pub mod zipf;

pub use dataset::Dataset;
pub use rng::Rng;
pub use sizes::App;
pub use zipf::Zipf;
