//! Netflix input: per-movie rating records.
//!
//! The application "calculates a similarity score between each pair of
//! users based on their movie preferences" \[3\]: for every movie, every pair
//! of users who both rated it contributes `<userA&userB, score>` to the
//! hash table, combined by addition across movies (§VI-A). Records are one
//! movie per line with its raters, so one task emits `k·(k-1)/2` pairs —
//! the multi-pair-per-task case the SEPO driver's progress counter exists
//! for.

use crate::dataset::Dataset;
use crate::rng::Rng;
use crate::zipf::Zipf;

/// Configuration for the ratings generator.
#[derive(Debug, Clone)]
pub struct RatingsConfig {
    /// Approximate total size in bytes.
    pub target_bytes: u64,
    /// User universe size; `None` derives from volume.
    pub n_users: Option<usize>,
    /// Raters per movie record (mean; actual is uniform in `[k/2, 3k/2)`).
    pub raters_per_movie: usize,
    /// Zipf exponent of user activity.
    pub zipf_exponent: f64,
}

impl Default for RatingsConfig {
    fn default() -> Self {
        RatingsConfig {
            target_bytes: 1 << 20,
            n_users: None,
            raters_per_movie: 10,
            zipf_exponent: 0.6,
        }
    }
}

/// Generate a ratings dataset: lines of `m<movie> u<user>:<rating> ...`.
pub fn generate(cfg: &RatingsConfig, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let k = cfg.raters_per_movie.max(2);
    let approx_line = 8 + k as u64 * 12;
    let n_movies = (cfg.target_bytes / approx_line).max(1);
    let n_users = cfg
        .n_users
        .unwrap_or(((n_movies as usize * k) / 20).max(16));
    let zipf = Zipf::new(n_users, cfg.zipf_exponent);
    let mut ds = Dataset::new();
    let mut line = String::new();
    let mut movie = 0u64;
    let mut raters: Vec<usize> = Vec::new();
    while ds.size_bytes() < cfg.target_bytes {
        let n = (k / 2 + rng.below(k as u64) as usize).max(2);
        raters.clear();
        while raters.len() < n {
            let u = zipf.sample(&mut rng);
            if !raters.contains(&u) {
                raters.push(u);
            }
        }
        line.clear();
        line.push_str(&format!("m{movie:07}"));
        for &u in &raters {
            line.push_str(&format!(" u{u:07}:{}", 1 + rng.below(5)));
        }
        line.push('\n');
        ds.push_record(line.as_bytes());
        movie += 1;
    }
    ds
}

/// Parse a movie record into `(movie_id, [(user, rating)])`.
pub fn parse_movie(record: &[u8]) -> Option<(u64, Vec<(u64, u8)>)> {
    let s = std::str::from_utf8(record).ok()?;
    let mut fields = s.split_whitespace();
    let movie = fields.next()?.strip_prefix('m')?.parse().ok()?;
    let mut raters = Vec::new();
    for f in fields {
        let (u, r) = f.split_once(':')?;
        raters.push((u.strip_prefix('u')?.parse().ok()?, r.parse().ok()?));
    }
    Some((movie, raters))
}

/// The pair key for users `a` and `b` — order-normalized so `<a,b>` and
/// `<b,a>` combine.
pub fn pair_key(a: u64, b: u64) -> [u8; 16] {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&lo.to_le_bytes());
    key[8..].copy_from_slice(&hi.to_le_bytes());
    key
}

/// The similarity contribution of two ratings of the same movie: higher
/// when the ratings agree (a simple co-preference score).
pub fn similarity(ra: u8, rb: u8) -> u64 {
    let diff = ra.abs_diff(rb) as u64;
    4u64.saturating_sub(diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_parse_back() {
        let ds = generate(
            &RatingsConfig {
                target_bytes: 50_000,
                ..Default::default()
            },
            1,
        );
        assert!(ds.len() > 100);
        for (i, rec) in ds.records().enumerate() {
            let (movie, raters) = parse_movie(rec).expect("parseable");
            assert_eq!(movie, i as u64);
            assert!(raters.len() >= 2);
            assert!(raters.iter().all(|&(_, r)| (1..=5).contains(&r)));
            // Raters unique within a movie.
            let mut us: Vec<u64> = raters.iter().map(|&(u, _)| u).collect();
            us.sort_unstable();
            us.dedup();
            assert_eq!(us.len(), raters.len());
        }
    }

    #[test]
    fn pair_key_is_order_normalized() {
        assert_eq!(pair_key(3, 9), pair_key(9, 3));
        assert_ne!(pair_key(3, 9), pair_key(3, 10));
    }

    #[test]
    fn similarity_rewards_agreement() {
        assert_eq!(similarity(5, 5), 4);
        assert_eq!(similarity(1, 5), 0);
        assert!(similarity(4, 5) > similarity(2, 5));
        assert_eq!(similarity(2, 4), similarity(4, 2));
    }

    #[test]
    fn active_users_co_occur_across_movies() {
        // Zipf user activity must produce repeated pairs — the combining
        // workload.
        let ds = generate(
            &RatingsConfig {
                target_bytes: 120_000,
                n_users: Some(200),
                zipf_exponent: 0.9,
                ..Default::default()
            },
            3,
        );
        let mut pair_counts = std::collections::HashMap::new();
        for rec in ds.records() {
            let (_, raters) = parse_movie(rec).unwrap();
            for i in 0..raters.len() {
                for j in i + 1..raters.len() {
                    *pair_counts
                        .entry(pair_key(raters[i].0, raters[j].0))
                        .or_insert(0u32) += 1;
                }
            }
        }
        assert!(pair_counts.values().any(|&c| c > 3), "no repeated pairs");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_movie(b"not a movie line").is_none());
        assert!(parse_movie(b"m1 u2").is_none()); // missing rating
    }
}
