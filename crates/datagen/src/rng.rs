//! Deterministic random source for dataset generation.
//!
//! xoshiro256** with a splitmix64 seeder. Implemented here (rather than
//! depending on an external generator) so that datasets are bit-identical
//! across library versions and platforms — the evaluation harness's
//! reported iteration counts depend on the exact data.

/// xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator; any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)` (Lemire's multiply-shift; `n` > 0).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Pick a reference from a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for n in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = Rng::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = Rng::new(3);
        let vals: Vec<f64> = (0..1000).map(|_| r.f64()).collect();
        assert!(vals.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn range_and_pick() {
        let mut r = Rng::new(5);
        for _ in 0..100 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        let items = [1, 2, 3];
        assert!(items.contains(r.pick(&items)));
    }
}
