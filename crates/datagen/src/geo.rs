//! Geo Location input: geotagged article records.
//!
//! The MapReduce application "groups Wikipedia articles based on the
//! geographic location from which they have been created" (§VI-A),
//! inserting `<location string, article ID>` under MAP_GROUP. Article
//! density is wildly skewed across places (cities vs. oceans), modelled
//! with a Zipf draw over a place universe of named grid cells.

use crate::dataset::Dataset;
use crate::rng::Rng;
use crate::zipf::Zipf;

/// Configuration for the geo generator.
#[derive(Debug, Clone)]
pub struct GeoConfig {
    /// Approximate total size in bytes.
    pub target_bytes: u64,
    /// Distinct places; `None` derives from volume.
    pub n_places: Option<usize>,
    /// Zipf exponent of article density per place.
    pub zipf_exponent: f64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        GeoConfig {
            target_bytes: 1 << 20,
            n_places: None,
            zipf_exponent: 1.0,
        }
    }
}

/// Render the place with rank `r` as a `lat,lon@name` location string.
pub fn place(rank: usize) -> String {
    // Deterministic pseudo-coordinates on a 0.1-degree grid.
    let h = (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let lat = (h % 1800) as i64 - 900;
    let lon = ((h >> 16) % 3600) as i64 - 1800;
    format!(
        "{}.{},{}.{}@place{rank:06}",
        lat / 10,
        (lat % 10).abs(),
        lon / 10,
        (lon % 10).abs()
    )
}

const APPROX_LINE: u64 = 78;

/// Generate a geo dataset: lines of
/// `<articleId> <location-string> <metadata>`.
pub fn generate(cfg: &GeoConfig, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let n_articles = (cfg.target_bytes / APPROX_LINE).max(1);
    let n_places = cfg.n_places.unwrap_or((n_articles / 8).max(2) as usize);
    let zipf = Zipf::new(n_places, cfg.zipf_exponent);
    let mut ds = Dataset::new();
    let mut line = String::new();
    let mut article = 0u64;
    while ds.size_bytes() < cfg.target_bytes {
        let p = zipf.sample(&mut rng);
        line.clear();
        line.push_str(&format!(
            "A{article:09} {} rev:{:04} lang:{} bytes:{:06}\n",
            place(p),
            rng.below(10_000),
            ["en", "de", "fr", "ja", "pt", "ru"][rng.below(6) as usize],
            rng.range(300, 90_000),
        ));
        ds.push_record(line.as_bytes());
        article += 1;
    }
    ds
}

/// Parse a geo record into `(article_id, location)` — the first two
/// fields; trailing metadata (revision, language, size) is ignored.
pub fn parse_article(record: &[u8]) -> Option<(&[u8], &[u8])> {
    let sp = record.iter().position(|&b| b == b' ')?;
    let article = &record[..sp];
    let rest = &record[sp + 1..];
    let end = rest
        .iter()
        .position(|&b| b == b' ' || b == b'\n')
        .unwrap_or(rest.len());
    if article.is_empty() || end == 0 {
        return None;
    }
    Some((article, &rest[..end]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn articles_parse_back() {
        let ds = generate(
            &GeoConfig {
                target_bytes: 40_000,
                ..Default::default()
            },
            1,
        );
        assert!(ds.len() > 500);
        for (i, rec) in ds.records().enumerate() {
            let (article, loc) = parse_article(rec).unwrap();
            assert_eq!(article, format!("A{i:09}").as_bytes());
            assert!(loc.windows(6).any(|w| w == b"@place"));
        }
    }

    #[test]
    fn places_unique_per_rank() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..5_000 {
            assert!(seen.insert(place(r)));
        }
    }

    #[test]
    fn popular_places_dominate() {
        let ds = generate(
            &GeoConfig {
                target_bytes: 80_000,
                n_places: Some(300),
                zipf_exponent: 1.1,
            },
            2,
        );
        let mut counts = std::collections::HashMap::new();
        for rec in ds.records() {
            let (_, loc) = parse_article(rec).unwrap();
            *counts.entry(loc.to_vec()).or_insert(0u32) += 1;
        }
        let total: u32 = counts.values().sum();
        let max = *counts.values().max().unwrap();
        assert!(max as f64 / total as f64 > 0.1);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeoConfig {
            target_bytes: 4_000,
            ..Default::default()
        };
        assert_eq!(generate(&cfg, 3).bytes, generate(&cfg, 3).bytes);
    }
}
