//! BigKernel-style transfer/compute pipelining model.
//!
//! The paper streams input to the device with BigKernel \[10\]: the input is
//! cut into chunks, and while the GPU computes on chunk *i*, the DMA engine
//! uploads chunk *i+1* into a second staging buffer (double buffering).
//! With per-chunk upload times `t_i` and kernel times `c_i`, the makespan is
//!
//! ```text
//! T = t_1 + Σ_{i=2..n} max(t_i, c_{i-1}) + c_n
//! ```
//!
//! i.e. only the first upload and the last kernel are exposed; every other
//! step hides the cheaper of (upload, previous kernel) behind the dearer.

use crate::clock::SimTime;

/// Makespan of a double-buffered pipeline with per-chunk `transfers` (host →
/// device upload times) and `computes` (kernel times). The two slices must
/// have equal length; an empty pipeline takes zero time.
pub fn pipelined_total(transfers: &[SimTime], computes: &[SimTime]) -> SimTime {
    assert_eq!(
        transfers.len(),
        computes.len(),
        "pipeline stages must pair one transfer with one compute"
    );
    let n = transfers.len();
    if n == 0 {
        return SimTime::ZERO;
    }
    let mut total = transfers[0];
    for i in 1..n {
        total += transfers[i].max(computes[i - 1]);
    }
    total + computes[n - 1]
}

/// Makespan of the same chunk sequence *without* pipelining (transfer, then
/// compute, strictly alternating). Used by ablations to quantify what
/// BigKernel-style overlap buys.
pub fn serial_total(transfers: &[SimTime], computes: &[SimTime]) -> SimTime {
    assert_eq!(transfers.len(), computes.len());
    transfers.iter().copied().sum::<SimTime>() + computes.iter().copied().sum::<SimTime>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_pipeline_is_zero() {
        assert_eq!(pipelined_total(&[], &[]), SimTime::ZERO);
    }

    #[test]
    fn single_chunk_is_transfer_plus_compute() {
        assert_eq!(pipelined_total(&[t(10)], &[t(30)]), t(40));
    }

    #[test]
    fn compute_bound_pipeline_hides_transfers() {
        // 4 chunks, transfer 10ms, compute 30ms:
        // T = 10 + 3*max(10,30) + 30 = 130ms
        let tr = vec![t(10); 4];
        let co = vec![t(30); 4];
        assert_eq!(pipelined_total(&tr, &co), t(130));
    }

    #[test]
    fn transfer_bound_pipeline_hides_compute() {
        // T = 30 + 3*max(30,10) + 10 = 130ms
        let tr = vec![t(30); 4];
        let co = vec![t(10); 4];
        assert_eq!(pipelined_total(&tr, &co), t(130));
    }

    #[test]
    fn pipelining_never_beats_critical_path_nor_loses_to_serial() {
        let tr = vec![t(5), t(20), t(7), t(11)];
        let co = vec![t(13), t(2), t(25), t(9)];
        let p = pipelined_total(&tr, &co);
        let s = serial_total(&tr, &co);
        let transfers: SimTime = tr.iter().copied().sum();
        let computes: SimTime = co.iter().copied().sum();
        assert!(p <= s, "pipelined {p} must not exceed serial {s}");
        assert!(p >= transfers.max(computes), "{p} below critical path");
    }

    #[test]
    #[should_panic(expected = "pipeline stages")]
    fn mismatched_lengths_panic() {
        pipelined_total(&[t(1)], &[]);
    }
}
