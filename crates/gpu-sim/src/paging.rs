//! Demand-paging simulator (Table III methodology).
//!
//! The paper evaluates the "GPU with hardware demand paging" alternative by
//! instrumenting Page View Count to record its hash-table access pattern,
//! replaying that trace through an LRU page-replacement simulation for a
//! range of assumed free GPU memory sizes, and multiplying the replacement
//! count by the page size to get a *lower bound* on PCIe traffic (§VI-D).
//! This module is that simulation: [`AccessTrace`] records byte-granular
//! accesses, and [`LruSimulator`] replays them at a chosen page size and
//! resident capacity.

use std::collections::HashMap;

/// A recorded sequence of byte addresses accessed in the (virtual) hash
/// table heap. Page identity is derived at replay time so one trace serves
/// every page size in Table III.
#[derive(Debug, Clone, Default)]
pub struct AccessTrace {
    addresses: Vec<u64>,
}

impl AccessTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size the trace buffer.
    pub fn with_capacity(n: usize) -> Self {
        AccessTrace {
            addresses: Vec::with_capacity(n),
        }
    }

    /// Record an access to byte address `addr`.
    #[inline]
    pub fn record(&mut self, addr: u64) {
        self.addresses.push(addr);
    }

    /// Record an access spanning `[addr, addr + len)`; every page the span
    /// touches is (at replay) treated as accessed.
    #[inline]
    pub fn record_span(&mut self, addr: u64, len: u64) {
        // Store as address plus sentinel expansion at replay time would
        // complicate the format; spans are rare (multi-page entries), so
        // record one address per 4 KiB boundary crossed — the finest page
        // size Table III uses.
        const FINEST: u64 = 4096;
        let mut a = addr;
        let end = addr.saturating_add(len.max(1));
        loop {
            self.addresses.push(a);
            let next = (a / FINEST + 1) * FINEST;
            if next >= end {
                break;
            }
            a = next;
        }
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// Iterate page ids for a given page size.
    pub fn pages(&self, page_size: u64) -> impl Iterator<Item = u64> + '_ {
        let ps = page_size.max(1);
        self.addresses.iter().map(move |&a| a / ps)
    }

    /// Highest byte address touched plus one (the trace's footprint bound).
    pub fn footprint(&self) -> u64 {
        self.addresses.iter().copied().max().map_or(0, |a| a + 1)
    }

    /// Append another trace (used to merge per-chunk traces).
    pub fn extend_from(&mut self, other: &AccessTrace) {
        self.addresses.extend_from_slice(&other.addresses);
    }
}

/// Result of one LRU replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagingOutcome {
    /// Pages faulted in while free frames remained (cold misses that fit).
    pub cold_loads: u64,
    /// Pages faulted in by evicting another page — the "page replacements"
    /// the paper multiplies by the page size.
    pub replacements: u64,
    /// Distinct pages in the trace.
    pub distinct_pages: u64,
    /// Total accesses replayed.
    pub accesses: u64,
}

impl PagingOutcome {
    /// Bytes transferred over PCIe under the paper's lower-bound accounting
    /// (replacements only; the initially-resident set is free).
    pub fn transfer_bytes(&self, page_size: u64) -> u64 {
        self.replacements.saturating_mul(page_size)
    }
}

/// LRU page-replacement simulator.
#[derive(Debug, Clone, Copy)]
pub struct LruSimulator {
    /// Page size in bytes.
    pub page_size: u64,
    /// Resident capacity in bytes (the "assumed physical GPU memory" column
    /// of Table III).
    pub capacity_bytes: u64,
}

impl LruSimulator {
    pub fn new(page_size: u64, capacity_bytes: u64) -> Self {
        LruSimulator {
            page_size,
            capacity_bytes,
        }
    }

    /// Resident capacity in whole pages (at least one). Rounded *up*: an
    /// assumed memory equal to the table's footprint must fit the table
    /// exactly (Table III's first row reports 0.00 s), even when the
    /// footprint is not page-aligned.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_bytes.div_ceil(self.page_size.max(1)).max(1)
    }

    /// Replay `trace` under LRU and report fault behaviour.
    ///
    /// Implementation: timestamp-based LRU. Each resident page stores the
    /// time of its last access; on replacement we evict the minimum. To keep
    /// replay O(n log n)-ish without a full ordered index, we maintain a
    /// monotone clock and a `HashMap<page, last_use>` plus a lazily-cleaned
    /// min-heap of `(last_use, page)` candidates.
    pub fn replay(&self, trace: &AccessTrace) -> PagingOutcome {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let capacity = self.capacity_pages() as usize;
        let mut last_use: HashMap<u64, u64> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut distinct: HashMap<u64, ()> = HashMap::new();
        let mut clock = 0u64;
        let mut cold_loads = 0u64;
        let mut replacements = 0u64;

        for page in trace.pages(self.page_size) {
            clock += 1;
            distinct.entry(page).or_insert(());
            match last_use.get_mut(&page) {
                Some(t) => {
                    *t = clock;
                    heap.push(Reverse((clock, page)));
                }
                None => {
                    if last_use.len() >= capacity {
                        // Evict the true LRU page: pop heap entries until one
                        // matches the page's current last_use (stale entries
                        // are skipped).
                        loop {
                            let Reverse((t, victim)) = heap
                                .pop()
                                .expect("heap cannot be empty while resident set is at capacity");
                            if last_use.get(&victim) == Some(&t) {
                                last_use.remove(&victim);
                                break;
                            }
                        }
                        replacements += 1;
                    } else {
                        cold_loads += 1;
                    }
                    last_use.insert(page, clock);
                    heap.push(Reverse((clock, page)));
                }
            }
        }

        PagingOutcome {
            cold_loads,
            replacements,
            distinct_pages: distinct.len() as u64,
            accesses: clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(pages: &[u64], page_size: u64) -> AccessTrace {
        let mut t = AccessTrace::new();
        for &p in pages {
            t.record(p * page_size);
        }
        t
    }

    #[test]
    fn everything_fits_no_replacements() {
        // Table III first row: table fits => 0.00s transfer time.
        let t = trace_of(&[0, 1, 2, 0, 1, 2, 2, 1, 0], 4096);
        let sim = LruSimulator::new(4096, 3 * 4096);
        let out = sim.replay(&t);
        assert_eq!(out.replacements, 0);
        assert_eq!(out.cold_loads, 3);
        assert_eq!(out.distinct_pages, 3);
        assert_eq!(out.transfer_bytes(4096), 0);
    }

    #[test]
    fn classic_lru_eviction_order() {
        // Capacity 2; access 0,1,2: evicts 0. Then 0 again: evicts 1.
        let t = trace_of(&[0, 1, 2, 0], 4096);
        let sim = LruSimulator::new(4096, 2 * 4096);
        let out = sim.replay(&t);
        assert_eq!(out.cold_loads, 2);
        assert_eq!(out.replacements, 2);
    }

    #[test]
    fn recency_updates_protect_hot_pages() {
        // Capacity 2; access 0,1,0,2 — page 0 was refreshed, so 1 is evicted;
        // then 1 returns, evicting 2's LRU peer (0 is older now).
        let t = trace_of(&[0, 1, 0, 2, 1], 4096);
        let sim = LruSimulator::new(4096, 2 * 4096);
        let out = sim.replay(&t);
        // faults: 0 cold, 1 cold, 2 replaces 1, 1 replaces 0.
        assert_eq!(out.cold_loads, 2);
        assert_eq!(out.replacements, 2);
    }

    #[test]
    fn replacements_monotone_in_shrinking_memory() {
        // The structural property of Table III: less assumed memory => more
        // transfers (never fewer). LRU is a stack algorithm, so this holds
        // exactly.
        let mut t = AccessTrace::new();
        // Pseudo-random-ish walk over 64 pages.
        let mut x = 7u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.record((x >> 33) % 64 * 4096);
        }
        let mut prev = None;
        for cap_pages in (8..=64).rev().step_by(8) {
            let out = LruSimulator::new(4096, cap_pages * 4096).replay(&t);
            if let Some(p) = prev {
                assert!(
                    out.replacements >= p,
                    "shrinking memory reduced faults: {} -> {}",
                    p,
                    out.replacements
                );
            }
            prev = Some(out.replacements);
        }
    }

    #[test]
    fn span_recording_touches_every_page() {
        let mut t = AccessTrace::new();
        t.record_span(4000, 9000); // crosses 4096 and 8192 boundaries
        let pages: Vec<u64> = t.pages(4096).collect();
        assert_eq!(pages, vec![0, 1, 2, 3]); // 4000..13000 spans pages 0..=3
    }

    #[test]
    fn footprint_tracks_max_address() {
        let mut t = AccessTrace::new();
        assert_eq!(t.footprint(), 0);
        t.record(100);
        t.record(5000);
        assert_eq!(t.footprint(), 5001);
    }

    #[test]
    fn one_trace_many_page_sizes() {
        // The same trace replayed at 3 page sizes, as in Table III: bigger
        // pages => fewer distinct pages but each fault moves more bytes.
        let mut t = AccessTrace::new();
        for i in 0..1000u64 {
            t.record((i * 37) % 100_000);
        }
        let small = LruSimulator::new(4096, 8 * 4096).replay(&t);
        let large = LruSimulator::new(65536, 8 * 4096).replay(&t);
        assert!(large.distinct_pages < small.distinct_pages);
    }

    #[test]
    fn capacity_smaller_than_one_page_clamps() {
        let t = trace_of(&[0, 1, 0, 1], 4096);
        let sim = LruSimulator::new(4096, 100); // < one page
        assert_eq!(sim.capacity_pages(), 1);
        let out = sim.replay(&t);
        assert_eq!(out.cold_loads, 1);
        assert_eq!(out.replacements, 3);
    }
}
