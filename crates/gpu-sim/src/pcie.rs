//! PCIe interconnect cost model.
//!
//! The bus distinguishes **bulk** transfers (large pipelined DMA copies —
//! input chunks streamed to the device, the heap evicted back to the host)
//! from **small** transactions (individual remote loads/stores issued by GPU
//! threads against pinned host memory). The order-of-magnitude efficiency
//! gap between the two is the economic fact underlying both Fig. 7 (the
//! pinned-memory alternative loses) and Table III (demand paging with small
//! pages loses): "the data is transferred over many small PCIe transactions,
//! which is much costlier than a few bulky PCIe transactions" (§VI-D).

use crate::clock::SimTime;
use crate::metrics::Metrics;
use crate::spec::PcieSpec;
use std::sync::Arc;

/// The simulated PCIe bus. Transfer methods return the simulated duration
/// and record volumes into the shared [`Metrics`] sink.
#[derive(Debug, Clone)]
pub struct PcieBus {
    spec: PcieSpec,
    metrics: Arc<Metrics>,
}

impl PcieBus {
    pub fn new(spec: PcieSpec, metrics: Arc<Metrics>) -> Self {
        PcieBus { spec, metrics }
    }

    /// The bus specification in force.
    pub fn spec(&self) -> &PcieSpec {
        &self.spec
    }

    /// Cost of one bulk DMA transfer of `bytes` bytes:
    /// fixed initiation latency + bytes at bulk bandwidth.
    pub fn bulk_transfer(&self, bytes: u64) -> SimTime {
        self.metrics.add_pcie_bulk_transfers(1);
        self.metrics.add_pcie_bulk_bytes(bytes);
        self.bulk_transfer_time(bytes)
    }

    /// Pure cost computation for a bulk transfer (no metrics recorded).
    pub fn bulk_transfer_time(&self, bytes: u64) -> SimTime {
        let latency = SimTime::from_nanos(self.spec.transaction_latency_ns);
        let wire = SimTime::from_secs_f64(bytes as f64 / self.spec.bulk_bandwidth as f64);
        latency + wire
    }

    /// Cost of `transactions` small remote transactions moving `bytes`
    /// total. Each transaction pays the initiation latency, but concurrent
    /// GPU threads overlap their round trips, so the *throughput-visible*
    /// cost is the larger of the latency-limited and bandwidth-limited
    /// rates, not their sum per transaction. `overlap` is the number of
    /// outstanding transactions the DMA/driver path can keep in flight
    /// (memory-level parallelism across PCIe, typically a few tens).
    pub fn small_transactions(&self, transactions: u64, bytes: u64, overlap: u32) -> SimTime {
        self.metrics.add_pcie_small_transactions(transactions);
        self.metrics.add_pcie_small_bytes(bytes);
        self.small_transactions_time(transactions, bytes, overlap)
    }

    /// Pure cost computation for small transactions (no metrics recorded).
    pub fn small_transactions_time(&self, transactions: u64, bytes: u64, overlap: u32) -> SimTime {
        let overlap = overlap.max(1) as f64;
        let latency_limited =
            transactions as f64 * self.spec.transaction_latency_ns as f64 / overlap / 1e9;
        let bandwidth_limited = bytes as f64 / self.spec.small_bandwidth as f64;
        SimTime::from_secs_f64(latency_limited.max(bandwidth_limited))
    }

    /// Cost of transferring `pages` pages of `page_size` bytes each as
    /// individual transfers — the demand-paging model of Table III. Each
    /// page movement is one PCIe transaction; large pages amortize the
    /// latency, tiny (4 KB) pages do not.
    ///
    /// The paper's Table III reports a *lower bound* that counts only wire
    /// time ("this data transfer time is only one of the overheads
    /// associated with demand paging"); `lower_bound = true` reproduces
    /// that, while `false` adds the per-transaction initiation latency.
    pub fn paged_transfer_time(&self, pages: u64, page_size: u64, lower_bound: bool) -> SimTime {
        // Page-granular DMA achieves bulk bandwidth only for large pages;
        // small pages see degraded effective bandwidth. Model: effective
        // bandwidth interpolates between small- and bulk-transfer rates with
        // the fraction of the transfer window occupied by protocol overhead.
        let per_page_wire = page_size as f64 / self.spec.bulk_bandwidth as f64;
        let per_page_overhead = if lower_bound {
            0.0
        } else {
            self.spec.transaction_latency_ns as f64 / 1e9
        };
        SimTime::from_secs_f64(pages as f64 * (per_page_wire + per_page_overhead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> PcieBus {
        PcieBus::new(PcieSpec::default(), Arc::new(Metrics::new()))
    }

    #[test]
    fn bulk_transfer_is_latency_plus_wire() {
        let b = bus();
        let spec = PcieSpec::default();
        let t = b.bulk_transfer_time(12_000_000_000); // 12 GB at 12 GB/s = 1 s
        let expected = 1.0 + spec.transaction_latency_ns as f64 / 1e9;
        assert!((t.as_secs_f64() - expected).abs() < 1e-6, "{t}");
    }

    #[test]
    fn bulk_records_metrics() {
        let m = Arc::new(Metrics::new());
        let b = PcieBus::new(PcieSpec::default(), Arc::clone(&m));
        b.bulk_transfer(1_000);
        b.bulk_transfer(2_000);
        let s = m.snapshot();
        assert_eq!(s.pcie_bulk_transfers, 2);
        assert_eq!(s.pcie_bulk_bytes, 3_000);
    }

    #[test]
    fn small_transactions_latency_limited_for_tiny_payloads() {
        let b = bus();
        // 1M transactions of 8 bytes each, overlap 32:
        // latency-limited: 1e6 * 1.2us / 32 = 37.5ms
        // bandwidth-limited: 8MB / 1.2GB/s = 6.7ms
        let t = b.small_transactions_time(1_000_000, 8_000_000, 32);
        assert!((t.as_secs_f64() - 0.0375).abs() < 1e-4, "{t}");
    }

    #[test]
    fn small_transactions_bandwidth_limited_for_fat_payloads() {
        let b = bus();
        // 1000 transactions of 2.4MB each: bandwidth term 2.4GB/2.4GB/s = 1s
        let t = b.small_transactions_time(1_000, 2_400_000_000, 32);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3, "{t}");
    }

    #[test]
    fn small_is_much_slower_than_bulk_for_same_volume() {
        let b = bus();
        let bytes = 100_000_000u64;
        let bulk = b.bulk_transfer_time(bytes);
        let small = b.small_transactions_time(bytes / 64, bytes, 32);
        assert!(
            small.as_secs_f64() > 5.0 * bulk.as_secs_f64(),
            "small={small} bulk={bulk}"
        );
    }

    #[test]
    fn paged_transfer_scales_with_page_count_and_size() {
        let b = bus();
        // Table III structure: same page count, bigger pages => more time.
        let small_pages = b.paged_transfer_time(1_000, 4 * 1024, true);
        let big_pages = b.paged_transfer_time(1_000, 1024 * 1024, true);
        assert!(big_pages > small_pages);
        // Lower bound excludes per-transaction latency.
        let lb = b.paged_transfer_time(1_000, 4 * 1024, true);
        let full = b.paged_transfer_time(1_000, 4 * 1024, false);
        assert!(full > lb);
    }

    #[test]
    fn zero_overlap_clamps() {
        let b = bus();
        let t = b.small_transactions_time(100, 800, 0);
        assert!(t > SimTime::ZERO);
    }
}
