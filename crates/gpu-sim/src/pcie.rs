//! PCIe interconnect cost model.
//!
//! The bus distinguishes **bulk** transfers (large pipelined DMA copies —
//! input chunks streamed to the device, the heap evicted back to the host)
//! from **small** transactions (individual remote loads/stores issued by GPU
//! threads against pinned host memory). The order-of-magnitude efficiency
//! gap between the two is the economic fact underlying both Fig. 7 (the
//! pinned-memory alternative loses) and Table III (demand paging with small
//! pages loses): "the data is transferred over many small PCIe transactions,
//! which is much costlier than a few bulky PCIe transactions" (§VI-D).

use crate::clock::SimTime;
use crate::faults::{FaultPlan, FaultSite};
use crate::metrics::Metrics;
use crate::spec::PcieSpec;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A bulk transfer attempt failed mid-flight (injected by a
/// [`FaultPlan`]). Carries the simulated time the doomed attempt wasted;
/// re-issuing the transfer is always legal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcieTransferError {
    /// Simulated time burned by the failed attempt (latency + wire time up
    /// to the failure point, modelled as a full pass).
    pub wasted: SimTime,
}

impl fmt::Display for PcieTransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transient PCIe transfer error (wasted {})", self.wasted)
    }
}

impl std::error::Error for PcieTransferError {}

/// Retries `bulk_transfer` folds into simulated time before declaring the
/// fault sequence implausible and pushing the transfer through anyway.
const MAX_TRANSFER_RETRIES: u32 = 8;

/// An asynchronous bulk DMA registered with [`PcieBus::begin_transfer`]:
/// the ticket the caller holds while the transfer is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlightTransfer {
    /// Ledger identity, monotone per bus. Returned again by
    /// [`PcieBus::drain_until`] when the transfer completes.
    pub id: u64,
    /// Simulated time at which the DMA engine finishes this transfer.
    pub completion: SimTime,
}

/// A transfer popped off the in-flight ledger by [`PcieBus::drain_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedTransfer {
    /// The id handed out by [`PcieBus::begin_transfer`].
    pub id: u64,
    /// Bytes the transfer moved.
    pub bytes: u64,
    /// Simulated completion time (`<=` the drain horizon).
    pub completion: SimTime,
}

/// The DMA engine's in-flight bookkeeping: one engine per bus, transfers
/// complete strictly in issue order.
#[derive(Debug, Default)]
struct TransferLedger {
    next_id: u64,
    busy_until: SimTime,
    /// Issued-but-not-drained transfers, in completion (= issue) order.
    in_flight: Vec<CompletedTransfer>,
}

/// The simulated PCIe bus. Transfer methods return the simulated duration
/// and record volumes into the shared [`Metrics`] sink.
#[derive(Debug, Clone)]
pub struct PcieBus {
    spec: PcieSpec,
    metrics: Arc<Metrics>,
    faults: Option<Arc<FaultPlan>>,
    /// Shared across clones: the device has one DMA engine, so every handle
    /// to the bus sees the same in-flight queue.
    ledger: Arc<Mutex<TransferLedger>>,
}

impl PcieBus {
    pub fn new(spec: PcieSpec, metrics: Arc<Metrics>) -> Self {
        PcieBus {
            spec,
            metrics,
            faults: None,
            ledger: Arc::new(Mutex::new(TransferLedger::default())),
        }
    }

    /// Attach a fault plan: bulk transfers may transiently error and are
    /// retried in simulated time (each failed attempt still costs a full
    /// latency + wire pass).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The bus specification in force.
    pub fn spec(&self) -> &PcieSpec {
        &self.spec
    }

    /// One bulk DMA transfer *attempt* of `bytes` bytes. Errors only when
    /// an attached [`FaultPlan`] injects a transfer fault; the error
    /// carries the simulated time the failed attempt burned. Metrics are
    /// recorded per attempt (the wire really moved the bytes).
    pub fn try_bulk_transfer(&self, bytes: u64) -> Result<SimTime, PcieTransferError> {
        self.metrics.add_pcie_bulk_transfers(1);
        self.metrics.add_pcie_bulk_bytes(bytes);
        let t = self.bulk_transfer_time(bytes);
        if let Some(plan) = &self.faults {
            if plan.should_fault(FaultSite::Pcie) {
                return Err(PcieTransferError { wasted: t });
            }
        }
        Ok(t)
    }

    /// Cost of one bulk DMA transfer of `bytes` bytes: fixed initiation
    /// latency + bytes at bulk bandwidth. With a fault plan attached,
    /// transient errors are absorbed as capped retries-in-simulated-time:
    /// the returned duration includes every failed attempt.
    pub fn bulk_transfer(&self, bytes: u64) -> SimTime {
        let mut total = SimTime::ZERO;
        for _ in 0..MAX_TRANSFER_RETRIES {
            match self.try_bulk_transfer(bytes) {
                Ok(t) => return total + t,
                Err(e) => total += e.wasted,
            }
        }
        // An implausibly long fault streak: charge one more clean pass and
        // declare the transfer done rather than hang the simulation.
        self.metrics.add_pcie_bulk_transfers(1);
        self.metrics.add_pcie_bulk_bytes(bytes);
        total + self.bulk_transfer_time(bytes)
    }

    /// Pure cost computation for a bulk transfer (no metrics recorded).
    pub fn bulk_transfer_time(&self, bytes: u64) -> SimTime {
        let latency = SimTime::from_nanos(self.spec.transaction_latency_ns);
        let wire = SimTime::from_secs_f64(bytes as f64 / self.spec.bulk_bandwidth as f64);
        latency + wire
    }

    /// Begin an **asynchronous** bulk DMA of `bytes` at simulated time
    /// `now`. The transfer is priced like [`Self::bulk_transfer`] (metrics
    /// per attempt, transient faults absorbed as retries-in-simulated-time)
    /// but instead of charging the caller inline it is entered into the
    /// bus's in-flight ledger: the engine starts it when it is free
    /// (`max(now, busy_until)`) and the returned ticket carries the
    /// completion time. Callers collect finished transfers with
    /// [`Self::drain_until`].
    pub fn begin_transfer(&self, bytes: u64, now: SimTime) -> InFlightTransfer {
        let duration = self.bulk_transfer(bytes);
        let mut ledger = self.ledger.lock();
        let start = now.max(ledger.busy_until);
        let completion = start + duration;
        let id = ledger.next_id;
        ledger.next_id += 1;
        ledger.busy_until = completion;
        ledger.in_flight.push(CompletedTransfer {
            id,
            bytes,
            completion,
        });
        InFlightTransfer { id, completion }
    }

    /// Pop every in-flight transfer whose completion time is `<= t`, in
    /// completion order. Transfers completing after `t` stay on the ledger.
    pub fn drain_until(&self, t: SimTime) -> Vec<CompletedTransfer> {
        let mut ledger = self.ledger.lock();
        // Completions are monotone (single engine), so the ready prefix is
        // exactly the transfers due by `t`.
        let ready = ledger
            .in_flight
            .iter()
            .take_while(|e| e.completion <= t)
            .count();
        ledger.in_flight.drain(..ready).collect()
    }

    /// Simulated time at which the DMA engine goes idle (zero when nothing
    /// was ever issued). Draining until this horizon empties the ledger.
    pub fn busy_until(&self) -> SimTime {
        self.ledger.lock().busy_until
    }

    /// Number of issued-but-not-drained transfers.
    pub fn in_flight_transfers(&self) -> usize {
        self.ledger.lock().in_flight.len()
    }

    /// Total bytes across issued-but-not-drained transfers.
    pub fn in_flight_bytes(&self) -> u64 {
        self.ledger.lock().in_flight.iter().map(|e| e.bytes).sum()
    }

    /// Cost of `transactions` small remote transactions moving `bytes`
    /// total. Each transaction pays the initiation latency, but concurrent
    /// GPU threads overlap their round trips, so the *throughput-visible*
    /// cost is the larger of the latency-limited and bandwidth-limited
    /// rates, not their sum per transaction. `overlap` is the number of
    /// outstanding transactions the DMA/driver path can keep in flight
    /// (memory-level parallelism across PCIe, typically a few tens).
    pub fn small_transactions(&self, transactions: u64, bytes: u64, overlap: u32) -> SimTime {
        self.metrics.add_pcie_small_transactions(transactions);
        self.metrics.add_pcie_small_bytes(bytes);
        self.small_transactions_time(transactions, bytes, overlap)
    }

    /// Pure cost computation for small transactions (no metrics recorded).
    pub fn small_transactions_time(&self, transactions: u64, bytes: u64, overlap: u32) -> SimTime {
        let overlap = overlap.max(1) as f64;
        let latency_limited =
            transactions as f64 * self.spec.transaction_latency_ns as f64 / overlap / 1e9;
        let bandwidth_limited = bytes as f64 / self.spec.small_bandwidth as f64;
        SimTime::from_secs_f64(latency_limited.max(bandwidth_limited))
    }

    /// Cost of transferring `pages` pages of `page_size` bytes each as
    /// individual transfers — the demand-paging model of Table III. Each
    /// page movement is one PCIe transaction; large pages amortize the
    /// latency, tiny (4 KB) pages do not.
    ///
    /// The paper's Table III reports a *lower bound* that counts only wire
    /// time ("this data transfer time is only one of the overheads
    /// associated with demand paging"); `lower_bound = true` reproduces
    /// that, while `false` adds the per-transaction initiation latency.
    pub fn paged_transfer_time(&self, pages: u64, page_size: u64, lower_bound: bool) -> SimTime {
        // Page-granular DMA achieves bulk bandwidth only for large pages;
        // small pages see degraded effective bandwidth. Model: effective
        // bandwidth interpolates between small- and bulk-transfer rates with
        // the fraction of the transfer window occupied by protocol overhead
        // (per-transaction setup time vs. wire time at the bulk rate). A
        // 4 KB page's window is mostly setup, so it transfers near the
        // small-transaction rate — the §VI-D penalty of Table III; a 1 MB
        // page amortizes the setup away and approaches the bulk rate.
        let latency_s = self.spec.transaction_latency_ns as f64 / 1e9;
        let bulk_wire = page_size as f64 / self.spec.bulk_bandwidth as f64;
        let overhead_fraction = latency_s / (latency_s + bulk_wire);
        let bulk_bw = self.spec.bulk_bandwidth as f64;
        let small_bw = self.spec.small_bandwidth as f64;
        let effective_bw = bulk_bw + overhead_fraction * (small_bw - bulk_bw);
        let per_page_wire = page_size as f64 / effective_bw;
        let per_page_overhead = if lower_bound { 0.0 } else { latency_s };
        SimTime::from_secs_f64(pages as f64 * (per_page_wire + per_page_overhead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> PcieBus {
        PcieBus::new(PcieSpec::default(), Arc::new(Metrics::new()))
    }

    #[test]
    fn bulk_transfer_is_latency_plus_wire() {
        let b = bus();
        let spec = PcieSpec::default();
        let t = b.bulk_transfer_time(12_000_000_000); // 12 GB at 12 GB/s = 1 s
        let expected = 1.0 + spec.transaction_latency_ns as f64 / 1e9;
        assert!((t.as_secs_f64() - expected).abs() < 1e-6, "{t}");
    }

    #[test]
    fn bulk_records_metrics() {
        let m = Arc::new(Metrics::new());
        let b = PcieBus::new(PcieSpec::default(), Arc::clone(&m));
        b.bulk_transfer(1_000);
        b.bulk_transfer(2_000);
        let s = m.snapshot();
        assert_eq!(s.pcie_bulk_transfers, 2);
        assert_eq!(s.pcie_bulk_bytes, 3_000);
    }

    #[test]
    fn small_transactions_latency_limited_for_tiny_payloads() {
        let b = bus();
        // 1M transactions of 8 bytes each, overlap 32:
        // latency-limited: 1e6 * 1.2us / 32 = 37.5ms
        // bandwidth-limited: 8MB / 1.2GB/s = 6.7ms
        let t = b.small_transactions_time(1_000_000, 8_000_000, 32);
        assert!((t.as_secs_f64() - 0.0375).abs() < 1e-4, "{t}");
    }

    #[test]
    fn small_transactions_bandwidth_limited_for_fat_payloads() {
        let b = bus();
        // 1000 transactions of 2.4MB each: bandwidth term 2.4GB/2.4GB/s = 1s
        let t = b.small_transactions_time(1_000, 2_400_000_000, 32);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3, "{t}");
    }

    #[test]
    fn small_is_much_slower_than_bulk_for_same_volume() {
        let b = bus();
        let bytes = 100_000_000u64;
        let bulk = b.bulk_transfer_time(bytes);
        let small = b.small_transactions_time(bytes / 64, bytes, 32);
        assert!(
            small.as_secs_f64() > 5.0 * bulk.as_secs_f64(),
            "small={small} bulk={bulk}"
        );
    }

    #[test]
    fn paged_transfer_scales_with_page_count_and_size() {
        let b = bus();
        // Table III structure: same page count, bigger pages => more time.
        let small_pages = b.paged_transfer_time(1_000, 4 * 1024, true);
        let big_pages = b.paged_transfer_time(1_000, 1024 * 1024, true);
        assert!(big_pages > small_pages);
        // Lower bound excludes per-transaction latency.
        let lb = b.paged_transfer_time(1_000, 4 * 1024, true);
        let full = b.paged_transfer_time(1_000, 4 * 1024, false);
        assert!(full > lb);
    }

    #[test]
    fn zero_overlap_clamps() {
        let b = bus();
        let t = b.small_transactions_time(100, 800, 0);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn tiny_pages_pay_the_small_transaction_penalty() {
        let b = bus();
        let spec = PcieSpec::default();
        let bytes = 4 * 1024u64;
        // Wire time a 4 KB page would take at pure bulk bandwidth.
        let pure_bulk = bytes as f64 / spec.bulk_bandwidth as f64;
        let t = b.paged_transfer_time(1, bytes, true).as_secs_f64();
        // The §VI-D regime: a 4 KB page is dominated by per-transaction
        // setup, so its effective rate sits well below bulk (Table III)...
        assert!(
            t > 2.0 * pure_bulk,
            "4 KB page too cheap: {t} vs {pure_bulk}"
        );
        // ...but never below the small-transaction floor.
        let floor = bytes as f64 / spec.small_bandwidth as f64;
        assert!(t <= floor * 1.001, "4 KB page below small-rate floor: {t}");
    }

    #[test]
    fn large_pages_approach_bulk_bandwidth() {
        let b = bus();
        let spec = PcieSpec::default();
        let bytes = 16 * 1024 * 1024u64; // 16 MB pages amortize setup away
        let pure_bulk = bytes as f64 / spec.bulk_bandwidth as f64;
        let t = b.paged_transfer_time(1, bytes, true).as_secs_f64();
        assert!(t < 1.01 * pure_bulk, "16 MB page should be near bulk: {t}");
        assert!(t >= pure_bulk, "cannot beat bulk bandwidth");
    }

    #[test]
    fn effective_bandwidth_is_monotone_in_page_size() {
        let b = bus();
        let mut last_rate = 0.0;
        for page_size in [4u64 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024] {
            let t = b.paged_transfer_time(1, page_size, true).as_secs_f64();
            let rate = page_size as f64 / t;
            assert!(rate > last_rate, "rate must grow with page size");
            last_rate = rate;
        }
    }

    #[test]
    fn try_bulk_transfer_succeeds_without_a_plan() {
        let b = bus();
        let t = b.try_bulk_transfer(1_000).unwrap();
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn faulted_transfers_retry_in_simulated_time() {
        use crate::faults::{FaultConfig, FaultPlan, FaultSite};
        let m = Arc::new(Metrics::new());
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            seed: 5,
            alloc_failure_rate: 0.0,
            pcie_error_rate: 0.5,
            lane_abort_rate: 0.0,
        }));
        let faulty =
            PcieBus::new(PcieSpec::default(), Arc::clone(&m)).with_faults(Arc::clone(&plan));
        let clean = bus();
        let bytes = 1_000_000u64;
        let mut total_faulty = SimTime::ZERO;
        let mut total_clean = SimTime::ZERO;
        for _ in 0..200 {
            total_faulty += faulty.bulk_transfer(bytes);
            total_clean += clean.bulk_transfer_time(bytes);
        }
        assert!(plan.injected(FaultSite::Pcie) > 0, "50% rate must fire");
        // Every transfer completed, but retries made the faulty bus slower.
        assert!(total_faulty > total_clean);
        // Metrics counted each attempt.
        assert!(m.snapshot().pcie_bulk_transfers > 200);
    }

    #[test]
    fn ledger_queues_transfers_back_to_back() {
        let b = bus();
        let one = b.bulk_transfer_time(1_000);
        let a = b.begin_transfer(1_000, SimTime::ZERO);
        let c = b.begin_transfer(1_000, SimTime::ZERO);
        // One DMA engine: the second transfer waits for the first.
        assert_eq!(a.completion, one);
        assert_eq!(c.completion, one + one);
        assert_eq!(b.busy_until(), c.completion);
        assert_eq!(b.in_flight_transfers(), 2);
        assert_eq!(b.in_flight_bytes(), 2_000);
    }

    #[test]
    fn drain_until_pops_exactly_the_due_prefix() {
        let b = bus();
        let a = b.begin_transfer(1_000, SimTime::ZERO);
        let c = b.begin_transfer(2_000, SimTime::ZERO);
        // Nothing is due before the first completion.
        assert!(b
            .drain_until(a.completion - SimTime::from_nanos(1))
            .is_empty());
        let first = b.drain_until(a.completion);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].id, a.id);
        assert_eq!(first[0].bytes, 1_000);
        assert_eq!(b.in_flight_transfers(), 1);
        let rest = b.drain_until(b.busy_until());
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].id, c.id);
        assert_eq!(b.in_flight_transfers(), 0);
        assert_eq!(b.in_flight_bytes(), 0);
    }

    #[test]
    fn idle_gaps_restart_the_engine_at_now() {
        let b = bus();
        let one = b.bulk_transfer_time(1_000);
        let a = b.begin_transfer(1_000, SimTime::ZERO);
        // Issue the next transfer long after the engine went idle: it
        // starts at `now`, not at the previous completion.
        let late = a.completion + SimTime::from_millis(5);
        let c = b.begin_transfer(1_000, late);
        assert_eq!(c.completion, late + one);
    }

    #[test]
    fn ledger_is_shared_across_clones() {
        let b = bus();
        let clone = b.clone();
        b.begin_transfer(1_000, SimTime::ZERO);
        assert_eq!(clone.in_flight_transfers(), 1);
        clone.drain_until(clone.busy_until());
        assert_eq!(b.in_flight_transfers(), 0);
    }

    #[test]
    fn certain_faults_still_terminate_via_the_retry_cap() {
        use crate::faults::{FaultConfig, FaultPlan};
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            seed: 1,
            alloc_failure_rate: 0.0,
            pcie_error_rate: 1.0,
            lane_abort_rate: 0.0,
        }));
        let b = PcieBus::new(PcieSpec::default(), Arc::new(Metrics::new())).with_faults(plan);
        // Rate 1.0 would retry forever without the cap; the call must
        // return, charging the failed attempts plus one forced pass.
        let t = b.bulk_transfer(1_000);
        let one = b.bulk_transfer_time(1_000);
        assert!(t.as_secs_f64() >= 8.0 * one.as_secs_f64());
    }
}
