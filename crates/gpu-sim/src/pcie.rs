//! PCIe interconnect cost model.
//!
//! The bus distinguishes **bulk** transfers (large pipelined DMA copies —
//! input chunks streamed to the device, the heap evicted back to the host)
//! from **small** transactions (individual remote loads/stores issued by GPU
//! threads against pinned host memory). The order-of-magnitude efficiency
//! gap between the two is the economic fact underlying both Fig. 7 (the
//! pinned-memory alternative loses) and Table III (demand paging with small
//! pages loses): "the data is transferred over many small PCIe transactions,
//! which is much costlier than a few bulky PCIe transactions" (§VI-D).

use crate::clock::SimTime;
use crate::faults::{FaultPlan, FaultSite};
use crate::metrics::Metrics;
use crate::spec::PcieSpec;
use std::fmt;
use std::sync::Arc;

/// A bulk transfer attempt failed mid-flight (injected by a
/// [`FaultPlan`]). Carries the simulated time the doomed attempt wasted;
/// re-issuing the transfer is always legal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcieTransferError {
    /// Simulated time burned by the failed attempt (latency + wire time up
    /// to the failure point, modelled as a full pass).
    pub wasted: SimTime,
}

impl fmt::Display for PcieTransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transient PCIe transfer error (wasted {})", self.wasted)
    }
}

impl std::error::Error for PcieTransferError {}

/// Retries `bulk_transfer` folds into simulated time before declaring the
/// fault sequence implausible and pushing the transfer through anyway.
const MAX_TRANSFER_RETRIES: u32 = 8;

/// The simulated PCIe bus. Transfer methods return the simulated duration
/// and record volumes into the shared [`Metrics`] sink.
#[derive(Debug, Clone)]
pub struct PcieBus {
    spec: PcieSpec,
    metrics: Arc<Metrics>,
    faults: Option<Arc<FaultPlan>>,
}

impl PcieBus {
    pub fn new(spec: PcieSpec, metrics: Arc<Metrics>) -> Self {
        PcieBus {
            spec,
            metrics,
            faults: None,
        }
    }

    /// Attach a fault plan: bulk transfers may transiently error and are
    /// retried in simulated time (each failed attempt still costs a full
    /// latency + wire pass).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The bus specification in force.
    pub fn spec(&self) -> &PcieSpec {
        &self.spec
    }

    /// One bulk DMA transfer *attempt* of `bytes` bytes. Errors only when
    /// an attached [`FaultPlan`] injects a transfer fault; the error
    /// carries the simulated time the failed attempt burned. Metrics are
    /// recorded per attempt (the wire really moved the bytes).
    pub fn try_bulk_transfer(&self, bytes: u64) -> Result<SimTime, PcieTransferError> {
        self.metrics.add_pcie_bulk_transfers(1);
        self.metrics.add_pcie_bulk_bytes(bytes);
        let t = self.bulk_transfer_time(bytes);
        if let Some(plan) = &self.faults {
            if plan.should_fault(FaultSite::Pcie) {
                return Err(PcieTransferError { wasted: t });
            }
        }
        Ok(t)
    }

    /// Cost of one bulk DMA transfer of `bytes` bytes: fixed initiation
    /// latency + bytes at bulk bandwidth. With a fault plan attached,
    /// transient errors are absorbed as capped retries-in-simulated-time:
    /// the returned duration includes every failed attempt.
    pub fn bulk_transfer(&self, bytes: u64) -> SimTime {
        let mut total = SimTime::ZERO;
        for _ in 0..MAX_TRANSFER_RETRIES {
            match self.try_bulk_transfer(bytes) {
                Ok(t) => return total + t,
                Err(e) => total += e.wasted,
            }
        }
        // An implausibly long fault streak: charge one more clean pass and
        // declare the transfer done rather than hang the simulation.
        self.metrics.add_pcie_bulk_transfers(1);
        self.metrics.add_pcie_bulk_bytes(bytes);
        total + self.bulk_transfer_time(bytes)
    }

    /// Pure cost computation for a bulk transfer (no metrics recorded).
    pub fn bulk_transfer_time(&self, bytes: u64) -> SimTime {
        let latency = SimTime::from_nanos(self.spec.transaction_latency_ns);
        let wire = SimTime::from_secs_f64(bytes as f64 / self.spec.bulk_bandwidth as f64);
        latency + wire
    }

    /// Cost of `transactions` small remote transactions moving `bytes`
    /// total. Each transaction pays the initiation latency, but concurrent
    /// GPU threads overlap their round trips, so the *throughput-visible*
    /// cost is the larger of the latency-limited and bandwidth-limited
    /// rates, not their sum per transaction. `overlap` is the number of
    /// outstanding transactions the DMA/driver path can keep in flight
    /// (memory-level parallelism across PCIe, typically a few tens).
    pub fn small_transactions(&self, transactions: u64, bytes: u64, overlap: u32) -> SimTime {
        self.metrics.add_pcie_small_transactions(transactions);
        self.metrics.add_pcie_small_bytes(bytes);
        self.small_transactions_time(transactions, bytes, overlap)
    }

    /// Pure cost computation for small transactions (no metrics recorded).
    pub fn small_transactions_time(&self, transactions: u64, bytes: u64, overlap: u32) -> SimTime {
        let overlap = overlap.max(1) as f64;
        let latency_limited =
            transactions as f64 * self.spec.transaction_latency_ns as f64 / overlap / 1e9;
        let bandwidth_limited = bytes as f64 / self.spec.small_bandwidth as f64;
        SimTime::from_secs_f64(latency_limited.max(bandwidth_limited))
    }

    /// Cost of transferring `pages` pages of `page_size` bytes each as
    /// individual transfers — the demand-paging model of Table III. Each
    /// page movement is one PCIe transaction; large pages amortize the
    /// latency, tiny (4 KB) pages do not.
    ///
    /// The paper's Table III reports a *lower bound* that counts only wire
    /// time ("this data transfer time is only one of the overheads
    /// associated with demand paging"); `lower_bound = true` reproduces
    /// that, while `false` adds the per-transaction initiation latency.
    pub fn paged_transfer_time(&self, pages: u64, page_size: u64, lower_bound: bool) -> SimTime {
        // Page-granular DMA achieves bulk bandwidth only for large pages;
        // small pages see degraded effective bandwidth. Model: effective
        // bandwidth interpolates between small- and bulk-transfer rates with
        // the fraction of the transfer window occupied by protocol overhead
        // (per-transaction setup time vs. wire time at the bulk rate). A
        // 4 KB page's window is mostly setup, so it transfers near the
        // small-transaction rate — the §VI-D penalty of Table III; a 1 MB
        // page amortizes the setup away and approaches the bulk rate.
        let latency_s = self.spec.transaction_latency_ns as f64 / 1e9;
        let bulk_wire = page_size as f64 / self.spec.bulk_bandwidth as f64;
        let overhead_fraction = latency_s / (latency_s + bulk_wire);
        let bulk_bw = self.spec.bulk_bandwidth as f64;
        let small_bw = self.spec.small_bandwidth as f64;
        let effective_bw = bulk_bw + overhead_fraction * (small_bw - bulk_bw);
        let per_page_wire = page_size as f64 / effective_bw;
        let per_page_overhead = if lower_bound { 0.0 } else { latency_s };
        SimTime::from_secs_f64(pages as f64 * (per_page_wire + per_page_overhead))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> PcieBus {
        PcieBus::new(PcieSpec::default(), Arc::new(Metrics::new()))
    }

    #[test]
    fn bulk_transfer_is_latency_plus_wire() {
        let b = bus();
        let spec = PcieSpec::default();
        let t = b.bulk_transfer_time(12_000_000_000); // 12 GB at 12 GB/s = 1 s
        let expected = 1.0 + spec.transaction_latency_ns as f64 / 1e9;
        assert!((t.as_secs_f64() - expected).abs() < 1e-6, "{t}");
    }

    #[test]
    fn bulk_records_metrics() {
        let m = Arc::new(Metrics::new());
        let b = PcieBus::new(PcieSpec::default(), Arc::clone(&m));
        b.bulk_transfer(1_000);
        b.bulk_transfer(2_000);
        let s = m.snapshot();
        assert_eq!(s.pcie_bulk_transfers, 2);
        assert_eq!(s.pcie_bulk_bytes, 3_000);
    }

    #[test]
    fn small_transactions_latency_limited_for_tiny_payloads() {
        let b = bus();
        // 1M transactions of 8 bytes each, overlap 32:
        // latency-limited: 1e6 * 1.2us / 32 = 37.5ms
        // bandwidth-limited: 8MB / 1.2GB/s = 6.7ms
        let t = b.small_transactions_time(1_000_000, 8_000_000, 32);
        assert!((t.as_secs_f64() - 0.0375).abs() < 1e-4, "{t}");
    }

    #[test]
    fn small_transactions_bandwidth_limited_for_fat_payloads() {
        let b = bus();
        // 1000 transactions of 2.4MB each: bandwidth term 2.4GB/2.4GB/s = 1s
        let t = b.small_transactions_time(1_000, 2_400_000_000, 32);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3, "{t}");
    }

    #[test]
    fn small_is_much_slower_than_bulk_for_same_volume() {
        let b = bus();
        let bytes = 100_000_000u64;
        let bulk = b.bulk_transfer_time(bytes);
        let small = b.small_transactions_time(bytes / 64, bytes, 32);
        assert!(
            small.as_secs_f64() > 5.0 * bulk.as_secs_f64(),
            "small={small} bulk={bulk}"
        );
    }

    #[test]
    fn paged_transfer_scales_with_page_count_and_size() {
        let b = bus();
        // Table III structure: same page count, bigger pages => more time.
        let small_pages = b.paged_transfer_time(1_000, 4 * 1024, true);
        let big_pages = b.paged_transfer_time(1_000, 1024 * 1024, true);
        assert!(big_pages > small_pages);
        // Lower bound excludes per-transaction latency.
        let lb = b.paged_transfer_time(1_000, 4 * 1024, true);
        let full = b.paged_transfer_time(1_000, 4 * 1024, false);
        assert!(full > lb);
    }

    #[test]
    fn zero_overlap_clamps() {
        let b = bus();
        let t = b.small_transactions_time(100, 800, 0);
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn tiny_pages_pay_the_small_transaction_penalty() {
        let b = bus();
        let spec = PcieSpec::default();
        let bytes = 4 * 1024u64;
        // Wire time a 4 KB page would take at pure bulk bandwidth.
        let pure_bulk = bytes as f64 / spec.bulk_bandwidth as f64;
        let t = b.paged_transfer_time(1, bytes, true).as_secs_f64();
        // The §VI-D regime: a 4 KB page is dominated by per-transaction
        // setup, so its effective rate sits well below bulk (Table III)...
        assert!(
            t > 2.0 * pure_bulk,
            "4 KB page too cheap: {t} vs {pure_bulk}"
        );
        // ...but never below the small-transaction floor.
        let floor = bytes as f64 / spec.small_bandwidth as f64;
        assert!(t <= floor * 1.001, "4 KB page below small-rate floor: {t}");
    }

    #[test]
    fn large_pages_approach_bulk_bandwidth() {
        let b = bus();
        let spec = PcieSpec::default();
        let bytes = 16 * 1024 * 1024u64; // 16 MB pages amortize setup away
        let pure_bulk = bytes as f64 / spec.bulk_bandwidth as f64;
        let t = b.paged_transfer_time(1, bytes, true).as_secs_f64();
        assert!(t < 1.01 * pure_bulk, "16 MB page should be near bulk: {t}");
        assert!(t >= pure_bulk, "cannot beat bulk bandwidth");
    }

    #[test]
    fn effective_bandwidth_is_monotone_in_page_size() {
        let b = bus();
        let mut last_rate = 0.0;
        for page_size in [4u64 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024] {
            let t = b.paged_transfer_time(1, page_size, true).as_secs_f64();
            let rate = page_size as f64 / t;
            assert!(rate > last_rate, "rate must grow with page size");
            last_rate = rate;
        }
    }

    #[test]
    fn try_bulk_transfer_succeeds_without_a_plan() {
        let b = bus();
        let t = b.try_bulk_transfer(1_000).unwrap();
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn faulted_transfers_retry_in_simulated_time() {
        use crate::faults::{FaultConfig, FaultPlan, FaultSite};
        let m = Arc::new(Metrics::new());
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            seed: 5,
            alloc_failure_rate: 0.0,
            pcie_error_rate: 0.5,
            lane_abort_rate: 0.0,
        }));
        let faulty =
            PcieBus::new(PcieSpec::default(), Arc::clone(&m)).with_faults(Arc::clone(&plan));
        let clean = bus();
        let bytes = 1_000_000u64;
        let mut total_faulty = SimTime::ZERO;
        let mut total_clean = SimTime::ZERO;
        for _ in 0..200 {
            total_faulty += faulty.bulk_transfer(bytes);
            total_clean += clean.bulk_transfer_time(bytes);
        }
        assert!(plan.injected(FaultSite::Pcie) > 0, "50% rate must fire");
        // Every transfer completed, but retries made the faulty bus slower.
        assert!(total_faulty > total_clean);
        // Metrics counted each attempt.
        assert!(m.snapshot().pcie_bulk_transfers > 200);
    }

    #[test]
    fn certain_faults_still_terminate_via_the_retry_cap() {
        use crate::faults::{FaultConfig, FaultPlan};
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            seed: 1,
            alloc_failure_rate: 0.0,
            pcie_error_rate: 1.0,
            lane_abort_rate: 0.0,
        }));
        let b = PcieBus::new(PcieSpec::default(), Arc::new(Metrics::new())).with_faults(plan);
        // Rate 1.0 would retry forever without the cap; the call must
        // return, charging the failed attempts plus one forced pass.
        let t = b.bulk_transfer(1_000);
        let one = b.bulk_transfer_time(1_000);
        assert!(t.as_secs_f64() >= 8.0 * one.as_secs_f64());
    }
}
