//! BigKernel-style double-buffered input staging.
//!
//! BigKernel \[10\] streams the input to the device through a pair of
//! staging buffers: while the kernel consumes chunk *i* from one buffer,
//! the DMA engine fills the other with chunk *i+1*. This module is the
//! mechanism itself — real buffers carved out of [`DeviceMemory`], with the
//! fill/consume hand-off and per-chunk transfer accounting — where
//! [`crate::pipeline`] is the analytic makespan model the harness prices
//! schedules with.

use crate::clock::SimTime;
use crate::memory::{DeviceMemory, OutOfDeviceMemory, Reservation};
use crate::pcie::PcieBus;
use std::fmt;

/// One staging buffer: capacity plus the bytes currently staged.
#[derive(Debug)]
struct Buffer {
    data: Vec<u8>,
    capacity: usize,
}

/// A chunk handed to [`StagingBuffers::try_stage`] exceeded the buffer
/// capacity. The staging pair is unchanged; the caller may split the chunk
/// and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTooLarge {
    /// Size of the rejected chunk.
    pub chunk_bytes: usize,
    /// Capacity of one staging buffer.
    pub capacity: usize,
}

impl fmt::Display for ChunkTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chunk of {} bytes exceeds staging capacity {}",
            self.chunk_bytes, self.capacity
        )
    }
}

impl std::error::Error for ChunkTooLarge {}

/// Double-buffered staging area for streaming input chunks to the device.
///
/// Holds its two device reservations and returns them when dropped (or via
/// [`StagingBuffers::release`]), so repeated runs against one
/// [`DeviceMemory`] do not leak capacity.
#[derive(Debug)]
pub struct StagingBuffers {
    buffers: [Buffer; 2],
    /// Index of the buffer the *kernel* currently reads; the other is the
    /// DMA engine's fill target.
    front: usize,
    /// Chunks staged so far.
    chunks: u64,
    /// Simulated transfer time accumulated by fills.
    transfer_time: SimTime,
    /// The device the buffers were carved out of, plus the two reservation
    /// tokens (taken by `release`/`Drop`).
    device: DeviceMemory,
    reservations: [Option<Reservation>; 2],
}

impl StagingBuffers {
    /// Reserve two `chunk_capacity`-byte buffers from `device`. The
    /// reservations are held for the life of the value and released on
    /// drop.
    pub fn new(device: &DeviceMemory, chunk_capacity: usize) -> Result<Self, OutOfDeviceMemory> {
        let a = device.reserve("staging buffer A", chunk_capacity as u64)?;
        let b = match device.reserve("staging buffer B", chunk_capacity as u64) {
            Ok(b) => b,
            Err(e) => {
                // Don't leak buffer A when B does not fit.
                device.release(a);
                return Err(e);
            }
        };
        Ok(StagingBuffers {
            buffers: [
                Buffer {
                    data: Vec::with_capacity(chunk_capacity),
                    capacity: chunk_capacity,
                },
                Buffer {
                    data: Vec::with_capacity(chunk_capacity),
                    capacity: chunk_capacity,
                },
            ],
            front: 0,
            chunks: 0,
            transfer_time: SimTime::ZERO,
            device: device.clone(),
            reservations: [Some(a), Some(b)],
        })
    }

    /// Return both reservations to the device immediately (idempotent;
    /// dropping does the same).
    pub fn release(&mut self) {
        for slot in &mut self.reservations {
            if let Some(r) = slot.take() {
                self.device.release(r);
            }
        }
    }

    /// Capacity of one buffer.
    pub fn chunk_capacity(&self) -> usize {
        self.buffers[0].capacity
    }

    /// Fill the *back* buffer with `chunk` (the DMA step) and record the
    /// transfer on `bus`. Returns [`ChunkTooLarge`] (leaving the pair
    /// unchanged) if the chunk exceeds the buffer.
    pub fn try_stage(&mut self, chunk: &[u8], bus: &PcieBus) -> Result<(), ChunkTooLarge> {
        let back = &mut self.buffers[1 - self.front];
        if chunk.len() > back.capacity {
            return Err(ChunkTooLarge {
                chunk_bytes: chunk.len(),
                capacity: back.capacity,
            });
        }
        back.data.clear();
        back.data.extend_from_slice(chunk);
        self.transfer_time += bus.bulk_transfer(chunk.len() as u64);
        self.chunks += 1;
        Ok(())
    }

    /// Like [`StagingBuffers::try_stage`], panicking on an oversized chunk
    /// (a caller bug: chunking is supposed to respect the capacity).
    pub fn stage(&mut self, chunk: &[u8], bus: &PcieBus) {
        if let Err(e) = self.try_stage(chunk, bus) {
            panic!("{e}");
        }
    }

    /// Stage `chunk`, splitting it at capacity boundaries when it exceeds
    /// one buffer instead of failing with [`ChunkTooLarge`]. Each piece is
    /// staged, swapped in, and handed to `consume` in order, so the caller
    /// sees the whole chunk exactly once. Returns the number of pieces
    /// staged (1 when the chunk fits, including an exact-capacity fit).
    pub fn stage_split<F>(&mut self, chunk: &[u8], bus: &PcieBus, mut consume: F) -> u64
    where
        F: FnMut(&[u8]),
    {
        match self.try_stage(chunk, bus) {
            Ok(()) => {
                self.swap();
                consume(self.front());
                1
            }
            Err(_) => {
                let cap = self.chunk_capacity().max(1);
                let mut pieces = 0u64;
                for piece in chunk.chunks(cap) {
                    self.stage(piece, bus);
                    self.swap();
                    consume(self.front());
                    pieces += 1;
                }
                pieces
            }
        }
    }

    /// Swap buffers: the freshly staged chunk becomes readable by the
    /// kernel, and the previous front becomes the next fill target.
    pub fn swap(&mut self) {
        self.front = 1 - self.front;
    }

    /// The chunk the kernel currently reads.
    pub fn front(&self) -> &[u8] {
        &self.buffers[self.front].data
    }

    /// Chunks staged so far.
    pub fn chunks_staged(&self) -> u64 {
        self.chunks
    }

    /// Total simulated transfer time of all fills.
    pub fn transfer_time(&self) -> SimTime {
        self.transfer_time
    }
}

impl Drop for StagingBuffers {
    fn drop(&mut self) {
        self.release();
    }
}

/// Drive `consume` over `input` in `chunk`-sized pieces through a staging
/// pair: chunk *i+1* is staged while the caller works on chunk *i*, exactly
/// BigKernel's schedule. Returns the number of chunks processed.
pub fn stream_chunks<F>(
    staging: &mut StagingBuffers,
    input: &[u8],
    bus: &PcieBus,
    mut consume: F,
) -> u64
where
    F: FnMut(&[u8]),
{
    let cap = staging.chunk_capacity();
    let mut chunks = input.chunks(cap);
    let Some(first) = chunks.next() else {
        return 0;
    };
    staging.stage(first, bus);
    staging.swap();
    let mut processed = 0u64;
    for next in chunks {
        // The DMA engine fills the back buffer "while" the kernel consumes
        // the front one; the overlap's timing effect is priced by
        // `pipeline::pipelined_total` in the harness.
        staging.stage(next, bus);
        consume(staging.front());
        processed += 1;
        staging.swap();
    }
    consume(staging.front());
    processed + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::spec::PcieSpec;
    use std::sync::Arc;

    fn bus() -> PcieBus {
        PcieBus::new(PcieSpec::default(), Arc::new(Metrics::new()))
    }

    #[test]
    fn reserves_two_buffers_from_device() {
        let dev = DeviceMemory::new(10_000);
        let s = StagingBuffers::new(&dev, 3_000).unwrap();
        assert_eq!(s.chunk_capacity(), 3_000);
        assert_eq!(dev.used(), 6_000);
    }

    #[test]
    fn rejects_oversized_reservation() {
        let dev = DeviceMemory::new(4_000);
        assert!(StagingBuffers::new(&dev, 3_000).is_err());
    }

    #[test]
    fn stage_swap_cycle_presents_chunks_in_order() {
        let dev = DeviceMemory::new(1 << 20);
        let mut s = StagingBuffers::new(&dev, 4).unwrap();
        let b = bus();
        s.stage(b"AAAA", &b);
        s.swap();
        assert_eq!(s.front(), b"AAAA");
        s.stage(b"BB", &b);
        s.swap();
        assert_eq!(s.front(), b"BB");
        assert_eq!(s.chunks_staged(), 2);
        assert!(s.transfer_time() > SimTime::ZERO);
    }

    #[test]
    fn stream_chunks_reassembles_exactly() {
        let dev = DeviceMemory::new(1 << 20);
        let mut s = StagingBuffers::new(&dev, 7).unwrap();
        let b = bus();
        let input: Vec<u8> = (0..100u8).collect();
        let mut seen = Vec::new();
        let n = stream_chunks(&mut s, &input, &b, |chunk| seen.extend_from_slice(chunk));
        assert_eq!(seen, input);
        assert_eq!(n, input.len().div_ceil(7) as u64);
        assert_eq!(s.chunks_staged(), n);
    }

    #[test]
    fn empty_input_streams_nothing() {
        let dev = DeviceMemory::new(1 << 20);
        let mut s = StagingBuffers::new(&dev, 8).unwrap();
        let n = stream_chunks(&mut s, &[], &bus(), |_| panic!("no chunks expected"));
        assert_eq!(n, 0);
    }

    #[test]
    fn transfer_time_tracks_volume() {
        let dev = DeviceMemory::new(1 << 20);
        let mut small = StagingBuffers::new(&dev, 1024).unwrap();
        let mut large = StagingBuffers::new(&dev, 1024).unwrap();
        let b = bus();
        stream_chunks(&mut small, &vec![0u8; 10_000], &b, |_| {});
        stream_chunks(&mut large, &vec![0u8; 100_000], &b, |_| {});
        assert!(large.transfer_time() > small.transfer_time());
    }

    #[test]
    #[should_panic(expected = "exceeds staging capacity")]
    fn oversized_chunk_panics() {
        let dev = DeviceMemory::new(1 << 20);
        let mut s = StagingBuffers::new(&dev, 8).unwrap();
        s.stage(&[0u8; 9], &bus());
    }

    #[test]
    fn try_stage_reports_oversized_chunks_without_panicking() {
        let dev = DeviceMemory::new(1 << 20);
        let mut s = StagingBuffers::new(&dev, 8).unwrap();
        let err = s.try_stage(&[0u8; 9], &bus()).unwrap_err();
        assert_eq!(err.chunk_bytes, 9);
        assert_eq!(err.capacity, 8);
        // The pair is still usable after the rejection.
        s.try_stage(&[0u8; 8], &bus()).unwrap();
        assert_eq!(s.chunks_staged(), 1);
    }

    #[test]
    fn stage_split_exact_capacity_is_one_piece() {
        let dev = DeviceMemory::new(1 << 20);
        let mut s = StagingBuffers::new(&dev, 8).unwrap();
        let mut seen = Vec::new();
        let n = s.stage_split(&[7u8; 8], &bus(), |c| seen.extend_from_slice(c));
        assert_eq!(n, 1, "an exact-capacity chunk must not split");
        assert_eq!(seen, [7u8; 8]);
        assert_eq!(s.chunks_staged(), 1);
    }

    #[test]
    fn stage_split_capacity_plus_one_splits_into_two() {
        let dev = DeviceMemory::new(1 << 20);
        let mut s = StagingBuffers::new(&dev, 8).unwrap();
        let input: Vec<u8> = (0..9u8).collect();
        let mut seen = Vec::new();
        let n = s.stage_split(&input, &bus(), |c| seen.extend_from_slice(c));
        assert_eq!(n, 2, "capacity+1 splits into a full piece plus one byte");
        assert_eq!(seen, input, "pieces reassemble the oversized chunk");
        assert_eq!(s.chunks_staged(), 2);
    }

    #[test]
    fn stage_split_handles_multi_capacity_chunks() {
        let dev = DeviceMemory::new(1 << 20);
        let mut s = StagingBuffers::new(&dev, 8).unwrap();
        let input: Vec<u8> = (0..30u8).collect();
        let mut seen = Vec::new();
        let n = s.stage_split(&input, &bus(), |c| seen.extend_from_slice(c));
        assert_eq!(n, 4);
        assert_eq!(seen, input);
    }

    #[test]
    fn dropping_staging_returns_both_reservations() {
        // Regression: `new` used to discard its Reservation tokens, leaking
        // 2x chunk capacity per construction against a shared device.
        let dev = DeviceMemory::new(10_000);
        for _ in 0..2 {
            let s = StagingBuffers::new(&dev, 3_000).unwrap();
            assert_eq!(dev.used(), 6_000);
            drop(s);
            assert_eq!(dev.free(), 10_000, "drop must return the capacity");
        }
        dev.verify_ledger().unwrap();
    }

    #[test]
    fn explicit_release_is_idempotent_with_drop() {
        let dev = DeviceMemory::new(10_000);
        let mut s = StagingBuffers::new(&dev, 2_000).unwrap();
        s.release();
        assert_eq!(dev.free(), 10_000);
        s.release(); // second call is a no-op
        drop(s); // and so is the drop
        assert_eq!(dev.free(), 10_000);
        dev.verify_ledger().unwrap();
    }

    #[test]
    fn failed_second_reservation_does_not_leak_the_first() {
        // 5000 bytes: buffer A (3000) fits, buffer B does not.
        let dev = DeviceMemory::new(5_000);
        assert!(StagingBuffers::new(&dev, 3_000).is_err());
        assert_eq!(dev.free(), 5_000, "partial construction must roll back");
    }
}
