//! Cost model: event counts → simulated time.
//!
//! A kernel launch (or a CPU processing phase) is summarized by a
//! [`Snapshot`] delta plus a [`ContentionHistogram`]; the model converts
//! them to time as
//!
//! ```text
//! t = max(t_compute, t_memory) + t_divergence + t_contention
//! ```
//!
//! * `t_compute`  — scalar work at the engine's derated throughput,
//! * `t_memory`   — streaming traffic at coalesced bandwidth plus irregular
//!   traffic at random-access bandwidth (compute and memory overlap on both
//!   engines, hence the `max`),
//! * `t_divergence` — GPU only: serialized warp replays,
//! * `t_contention` — serialized atomic rounds on hot locations; the
//!   threshold at which a location becomes hot is `total / threads`, which
//!   is what makes the 10,240-thread GPU suffer contention on workloads
//!   (Word Count, §VI-B) where the 8-thread CPU does not.
//!
//! PCIe transfer time is *not* part of kernel time: transfers are costed by
//! [`crate::pcie::PcieBus`] and composed with kernel times by the pipeline
//! model ([`crate::pipeline`]), mirroring how BigKernel overlaps transfers
//! with computation.

use crate::clock::SimTime;
use crate::metrics::{ContentionHistogram, Snapshot};
use crate::spec::{DeviceSpec, HostSpec};

/// Fraction of peak device bandwidth achieved by coalesced streaming reads.
const GPU_STREAM_EFFICIENCY: f64 = 0.75;
/// Fraction of peak host bandwidth achieved by sequential streaming reads.
const CPU_STREAM_EFFICIENCY: f64 = 0.80;
/// On-chip shared memory bandwidth relative to peak DRAM bandwidth. Kepler
/// SMX shared memory sustains several times the device's DRAM rate with no
/// coalescing concerns, which is what makes warp-combiner probes close to
/// free next to the device atomics they replace.
const GPU_SMEM_BANDWIDTH_RATIO: f64 = 8.0;

/// Converts event counts into simulated durations for the GPU device.
#[derive(Debug, Clone)]
pub struct GpuCostModel {
    spec: DeviceSpec,
}

impl GpuCostModel {
    pub fn new(spec: DeviceSpec) -> Self {
        GpuCostModel { spec }
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Simulated duration of a kernel phase described by `s` (a snapshot
    /// *delta* covering just that phase) and the contention profile of the
    /// atomic updates the phase performed.
    pub fn kernel_time(&self, s: &Snapshot, contention: &ContentionHistogram) -> SimTime {
        let t_compute = s.compute_units as f64 / self.spec.compute_ops_per_sec();
        let t_stream =
            s.stream_bytes as f64 / (self.spec.mem_bandwidth as f64 * GPU_STREAM_EFFICIENCY);
        let t_irregular = s.device_bytes as f64 / self.spec.random_access_bandwidth();
        let t_smem =
            s.smem_bytes as f64 / (self.spec.mem_bandwidth as f64 * GPU_SMEM_BANDWIDTH_RATIO);
        let t_mem = t_stream + t_irregular + t_smem;
        let t_div = s.divergence_events as f64 * self.spec.divergence_ns / 1e9;
        let t_contention = self.contention_time(contention).as_secs_f64();
        SimTime::from_secs_f64(t_compute.max(t_mem) + t_div + t_contention)
    }

    /// Serialized-atomic penalty for the given update profile on this
    /// device's thread count.
    pub fn contention_time(&self, contention: &ContentionHistogram) -> SimTime {
        let total = contention.total_updates();
        if total == 0 {
            return SimTime::ZERO;
        }
        let threshold = (total / self.spec.resident_threads as u64).max(1);
        let excess = contention.excess_above(threshold);
        SimTime::from_secs_f64(excess as f64 * self.spec.atomic_conflict_ns / 1e9)
    }
}

/// Converts event counts into simulated durations for the host CPU.
#[derive(Debug, Clone)]
pub struct CpuCostModel {
    spec: HostSpec,
}

impl CpuCostModel {
    pub fn new(spec: HostSpec) -> Self {
        CpuCostModel { spec }
    }

    pub fn spec(&self) -> &HostSpec {
        &self.spec
    }

    /// Simulated duration of a multi-threaded CPU phase. Divergence events,
    /// if present in the snapshot, are ignored: CPUs have no warps.
    pub fn phase_time(&self, s: &Snapshot, contention: &ContentionHistogram) -> SimTime {
        let t_compute = s.compute_units as f64 / self.spec.compute_ops_per_sec();
        let t_stream =
            s.stream_bytes as f64 / (self.spec.mem_bandwidth as f64 * CPU_STREAM_EFFICIENCY);
        let t_irregular = s.device_bytes as f64 / self.spec.random_access_bandwidth();
        let t_mem = t_stream + t_irregular;
        let t_contention = self.contention_time(contention).as_secs_f64();
        SimTime::from_secs_f64(t_compute.max(t_mem) + t_contention)
    }

    /// Serialized penalty of contended lock/CAS rounds on the CPU's thread
    /// count.
    pub fn contention_time(&self, contention: &ContentionHistogram) -> SimTime {
        let total = contention.total_updates();
        if total == 0 {
            return SimTime::ZERO;
        }
        let threshold = (total / self.spec.threads as u64).max(1);
        let excess = contention.excess_above(threshold);
        SimTime::from_secs_f64(excess as f64 * self.spec.atomic_conflict_ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ContentionHistogram;

    fn empty_contention() -> ContentionHistogram {
        ContentionHistogram::from_counts(std::iter::empty::<u64>())
    }

    #[test]
    fn compute_bound_kernel_scales_with_units() {
        let m = GpuCostModel::new(DeviceSpec::default());
        let mut s = Snapshot {
            compute_units: 1_260_000_000_000, // exactly 1 second of GPU compute
            ..Default::default()
        };
        let t = m.kernel_time(&s, &empty_contention());
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9, "{t}");
        s.compute_units *= 2;
        let t2 = m.kernel_time(&s, &empty_contention());
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_and_compute_overlap_via_max() {
        let m = GpuCostModel::new(DeviceSpec::default());
        let mut s = Snapshot {
            compute_units: 1_260_000_000_000, // 1 s compute
            device_bytes: 4_200_000_000,      // 0.1 s irregular at 42 GB/s
            ..Default::default()
        };
        let t = m.kernel_time(&s, &empty_contention());
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6, "{t}");
        // Flip: memory-dominated.
        s.compute_units = 0;
        s.device_bytes = 42_000_000_000; // 1 s
        let t = m.kernel_time(&s, &empty_contention());
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn smem_traffic_is_far_cheaper_than_device_traffic() {
        let m = GpuCostModel::new(DeviceSpec::default());
        let smem = Snapshot {
            smem_bytes: 1_000_000_000,
            ..Default::default()
        };
        let dev = Snapshot {
            device_bytes: 1_000_000_000,
            ..Default::default()
        };
        let t_smem = m.kernel_time(&smem, &empty_contention());
        let t_dev = m.kernel_time(&dev, &empty_contention());
        assert!(t_smem > SimTime::ZERO);
        assert!(
            t_dev.ratio(t_smem) > 5.0,
            "smem={t_smem} dev={t_dev} ratio={}",
            t_dev.ratio(t_smem)
        );
    }

    #[test]
    fn divergence_adds_serial_time() {
        let m = GpuCostModel::new(DeviceSpec::default());
        let s = Snapshot {
            divergence_events: 1_000_000,
            ..Default::default()
        };
        let t = m.kernel_time(&s, &empty_contention());
        let expected = 1e6 * DeviceSpec::default().divergence_ns / 1e9;
        assert!((t.as_secs_f64() - expected).abs() < 1e-9);
    }

    #[test]
    fn gpu_contention_threshold_depends_on_thread_count() {
        // One location takes 50% of 1M updates: hot for 10,240 GPU threads
        // (threshold 97) but also for 8 CPU threads (threshold 125k) — the
        // *excess* differs by the threshold subtraction.
        let counts: Vec<u64> = std::iter::once(500_000u64)
            .chain(std::iter::repeat_n(1, 500_000))
            .collect();
        let h = ContentionHistogram::from_counts(counts);
        let gpu = GpuCostModel::new(DeviceSpec::default());
        let cpu = CpuCostModel::new(HostSpec::default());
        let t_gpu = gpu.contention_time(&h);
        let t_cpu = cpu.contention_time(&h);
        // GPU excess ≈ 500k - 97; CPU excess ≈ 500k - 125k = 375k, but CPU
        // per-round cost is higher; the *relative* penalty (vs a no-hot-key
        // profile) is what the harness exercises. Both must be nonzero here.
        assert!(t_gpu > SimTime::ZERO);
        assert!(t_cpu > SimTime::ZERO);
    }

    #[test]
    fn uniform_profile_contends_on_gpu_before_cpu() {
        // 1M updates over 5k locations (200 each). GPU threshold:
        // 1M/10240 = 97 → excess (200-97)*5000. CPU threshold: 125k → none.
        let h = ContentionHistogram::from_counts(vec![200u64; 5_000]);
        let gpu = GpuCostModel::new(DeviceSpec::default());
        let cpu = CpuCostModel::new(HostSpec::default());
        assert!(gpu.contention_time(&h) > SimTime::ZERO);
        assert_eq!(cpu.contention_time(&h), SimTime::ZERO);
    }

    #[test]
    fn cpu_ignores_divergence() {
        let m = CpuCostModel::new(HostSpec::default());
        let s = Snapshot {
            divergence_events: 1_000_000_000,
            ..Default::default()
        };
        assert_eq!(m.phase_time(&s, &empty_contention()), SimTime::ZERO);
    }

    #[test]
    fn gpu_beats_cpu_on_identical_regular_work() {
        // The paper's premise: for regular, contention-free work the GPU's
        // raw rates win by a large factor.
        let s = Snapshot {
            compute_units: 10_000_000_000,
            stream_bytes: 2_000_000_000,
            device_bytes: 500_000_000,
            ..Default::default()
        };
        let gpu = GpuCostModel::new(DeviceSpec::default()).kernel_time(&s, &empty_contention());
        let cpu = CpuCostModel::new(HostSpec::default()).phase_time(&s, &empty_contention());
        assert!(
            cpu.ratio(gpu) > 5.0,
            "cpu={cpu} gpu={gpu} ratio={}",
            cpu.ratio(gpu)
        );
    }

    #[test]
    fn zero_snapshot_costs_zero() {
        let gpu = GpuCostModel::new(DeviceSpec::default());
        let cpu = CpuCostModel::new(HostSpec::default());
        let s = Snapshot::default();
        assert_eq!(gpu.kernel_time(&s, &empty_contention()), SimTime::ZERO);
        assert_eq!(cpu.phase_time(&s, &empty_contention()), SimTime::ZERO);
    }
}
