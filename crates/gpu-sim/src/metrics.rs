//! Event counters feeding the cost model.
//!
//! The simulator never times real execution. Instead, every component
//! (executor, allocator, hash table, PCIe bus) counts the events it
//! performs — scalar work units, irregular device-memory bytes touched,
//! warp-divergence events, PCIe transactions — into a shared [`Metrics`]
//! sink. The cost model (see [`crate::cost`]) then converts a [`Snapshot`]
//! of these counters into simulated time. Because the counts are produced by
//! real execution of the real data structures, the reported behaviour
//! (iteration counts, postponements, transfer volumes) is genuine; only the
//! clock is modelled.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic event counters. Cheap to clone via `Arc`; kernels flush
/// per-warp local tallies into it to keep host-side atomic traffic low.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Tasks (input records / map invocations) executed.
    pub tasks: AtomicU64,
    /// Abstract scalar work units charged by kernels (≈ useful ALU ops).
    pub compute_units: AtomicU64,
    /// Bytes of irregular (uncoalesced) device-memory traffic: hash-table
    /// chain walks, entry reads/writes, allocator metadata.
    pub device_bytes: AtomicU64,
    /// Bytes of streaming (coalesced) device-memory traffic: reading input
    /// records from the staging buffers.
    pub stream_bytes: AtomicU64,
    /// Hash-chain links traversed (also contributes to `device_bytes`;
    /// tracked separately for reporting).
    pub chain_hops: AtomicU64,
    /// Bytes of on-chip shared-memory traffic (warp-combiner probes and
    /// slot updates) — far cheaper than `device_bytes`.
    pub smem_bytes: AtomicU64,
    /// Emits absorbed by a warp combiner without touching the table.
    pub combiner_hits: AtomicU64,
    /// Combiner slots flushed into the table (one device atomic each).
    pub combiner_flushes: AtomicU64,
    /// Combiner slots evicted early because the warp buffer was full.
    pub combiner_overflows: AtomicU64,
    /// Lost bucket-head CAS races (publish retries under real concurrency;
    /// identically zero in the deterministic modes).
    pub head_cas_retries: AtomicU64,
    /// Warp-divergence events: for each warp, one event per *extra* branch
    /// class beyond the first that the warp had to serially execute.
    pub divergence_events: AtomicU64,
    /// Allocation requests served by the page allocator.
    pub alloc_success: AtomicU64,
    /// Allocation requests declined (POSTPONE responses).
    pub alloc_postponed: AtomicU64,
    /// Bulk PCIe transfers initiated (large DMA copies).
    pub pcie_bulk_transfers: AtomicU64,
    /// Bytes moved by bulk PCIe transfers.
    pub pcie_bulk_bytes: AtomicU64,
    /// Small PCIe transactions (remote loads/stores to pinned host memory).
    pub pcie_small_transactions: AtomicU64,
    /// Bytes moved by small PCIe transactions.
    pub pcie_small_bytes: AtomicU64,
}

macro_rules! add_methods {
    ($($field:ident => $adder:ident),* $(,)?) => {
        impl Metrics {
            $(
                #[inline]
                pub fn $adder(&self, n: u64) {
                    self.$field.fetch_add(n, Ordering::Relaxed);
                }
            )*
        }
    };
}

add_methods! {
    tasks => add_tasks,
    compute_units => add_compute_units,
    device_bytes => add_device_bytes,
    stream_bytes => add_stream_bytes,
    chain_hops => add_chain_hops,
    smem_bytes => add_smem_bytes,
    combiner_hits => add_combiner_hits,
    combiner_flushes => add_combiner_flushes,
    combiner_overflows => add_combiner_overflows,
    head_cas_retries => add_head_cas_retries,
    divergence_events => add_divergence_events,
    alloc_success => add_alloc_success,
    alloc_postponed => add_alloc_postponed,
    pcie_bulk_transfers => add_pcie_bulk_transfers,
    pcie_bulk_bytes => add_pcie_bulk_bytes,
    pcie_small_transactions => add_pcie_small_transactions,
    pcie_small_bytes => add_pcie_small_bytes,
}

impl Metrics {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capture a consistent-enough point-in-time copy. (Individual counters
    /// are read with relaxed ordering; callers snapshot only at quiescent
    /// points — between kernel launches — where no concurrent writers run.)
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            tasks: self.tasks.load(Ordering::Relaxed),
            compute_units: self.compute_units.load(Ordering::Relaxed),
            device_bytes: self.device_bytes.load(Ordering::Relaxed),
            stream_bytes: self.stream_bytes.load(Ordering::Relaxed),
            chain_hops: self.chain_hops.load(Ordering::Relaxed),
            smem_bytes: self.smem_bytes.load(Ordering::Relaxed),
            combiner_hits: self.combiner_hits.load(Ordering::Relaxed),
            combiner_flushes: self.combiner_flushes.load(Ordering::Relaxed),
            combiner_overflows: self.combiner_overflows.load(Ordering::Relaxed),
            head_cas_retries: self.head_cas_retries.load(Ordering::Relaxed),
            divergence_events: self.divergence_events.load(Ordering::Relaxed),
            alloc_success: self.alloc_success.load(Ordering::Relaxed),
            alloc_postponed: self.alloc_postponed.load(Ordering::Relaxed),
            pcie_bulk_transfers: self.pcie_bulk_transfers.load(Ordering::Relaxed),
            pcie_bulk_bytes: self.pcie_bulk_bytes.load(Ordering::Relaxed),
            pcie_small_transactions: self.pcie_small_transactions.load(Ordering::Relaxed),
            pcie_small_bytes: self.pcie_small_bytes.load(Ordering::Relaxed),
        }
    }

    /// Overwrite every counter with the values captured in `s`, rolling
    /// the sink back to a checkpointed state. Only meaningful at quiescent
    /// points (iteration boundaries during hard-fault recovery).
    pub fn restore(&self, s: &Snapshot) {
        self.tasks.store(s.tasks, Ordering::Relaxed);
        self.compute_units.store(s.compute_units, Ordering::Relaxed);
        self.device_bytes.store(s.device_bytes, Ordering::Relaxed);
        self.stream_bytes.store(s.stream_bytes, Ordering::Relaxed);
        self.chain_hops.store(s.chain_hops, Ordering::Relaxed);
        self.smem_bytes.store(s.smem_bytes, Ordering::Relaxed);
        self.combiner_hits.store(s.combiner_hits, Ordering::Relaxed);
        self.combiner_flushes
            .store(s.combiner_flushes, Ordering::Relaxed);
        self.combiner_overflows
            .store(s.combiner_overflows, Ordering::Relaxed);
        self.head_cas_retries
            .store(s.head_cas_retries, Ordering::Relaxed);
        self.divergence_events
            .store(s.divergence_events, Ordering::Relaxed);
        self.alloc_success.store(s.alloc_success, Ordering::Relaxed);
        self.alloc_postponed
            .store(s.alloc_postponed, Ordering::Relaxed);
        self.pcie_bulk_transfers
            .store(s.pcie_bulk_transfers, Ordering::Relaxed);
        self.pcie_bulk_bytes
            .store(s.pcie_bulk_bytes, Ordering::Relaxed);
        self.pcie_small_transactions
            .store(s.pcie_small_transactions, Ordering::Relaxed);
        self.pcie_small_bytes
            .store(s.pcie_small_bytes, Ordering::Relaxed);
    }

    /// Reset all counters to zero. Only meaningful at quiescent points.
    pub fn reset(&self) {
        self.tasks.store(0, Ordering::Relaxed);
        self.compute_units.store(0, Ordering::Relaxed);
        self.device_bytes.store(0, Ordering::Relaxed);
        self.stream_bytes.store(0, Ordering::Relaxed);
        self.chain_hops.store(0, Ordering::Relaxed);
        self.smem_bytes.store(0, Ordering::Relaxed);
        self.combiner_hits.store(0, Ordering::Relaxed);
        self.combiner_flushes.store(0, Ordering::Relaxed);
        self.combiner_overflows.store(0, Ordering::Relaxed);
        self.head_cas_retries.store(0, Ordering::Relaxed);
        self.divergence_events.store(0, Ordering::Relaxed);
        self.alloc_success.store(0, Ordering::Relaxed);
        self.alloc_postponed.store(0, Ordering::Relaxed);
        self.pcie_bulk_transfers.store(0, Ordering::Relaxed);
        self.pcie_bulk_bytes.store(0, Ordering::Relaxed);
        self.pcie_small_transactions.store(0, Ordering::Relaxed);
        self.pcie_small_bytes.store(0, Ordering::Relaxed);
    }
}

/// Plain-value copy of [`Metrics`] at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub tasks: u64,
    pub compute_units: u64,
    pub device_bytes: u64,
    pub stream_bytes: u64,
    pub chain_hops: u64,
    pub smem_bytes: u64,
    pub combiner_hits: u64,
    pub combiner_flushes: u64,
    pub combiner_overflows: u64,
    pub head_cas_retries: u64,
    pub divergence_events: u64,
    pub alloc_success: u64,
    pub alloc_postponed: u64,
    pub pcie_bulk_transfers: u64,
    pub pcie_bulk_bytes: u64,
    pub pcie_small_transactions: u64,
    pub pcie_small_bytes: u64,
}

impl Snapshot {
    /// Field-wise difference `self - earlier`, saturating at zero. Used to
    /// attribute events to a phase bounded by two snapshots.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            tasks: self.tasks.saturating_sub(earlier.tasks),
            compute_units: self.compute_units.saturating_sub(earlier.compute_units),
            device_bytes: self.device_bytes.saturating_sub(earlier.device_bytes),
            stream_bytes: self.stream_bytes.saturating_sub(earlier.stream_bytes),
            chain_hops: self.chain_hops.saturating_sub(earlier.chain_hops),
            smem_bytes: self.smem_bytes.saturating_sub(earlier.smem_bytes),
            combiner_hits: self.combiner_hits.saturating_sub(earlier.combiner_hits),
            combiner_flushes: self
                .combiner_flushes
                .saturating_sub(earlier.combiner_flushes),
            combiner_overflows: self
                .combiner_overflows
                .saturating_sub(earlier.combiner_overflows),
            head_cas_retries: self
                .head_cas_retries
                .saturating_sub(earlier.head_cas_retries),
            divergence_events: self
                .divergence_events
                .saturating_sub(earlier.divergence_events),
            alloc_success: self.alloc_success.saturating_sub(earlier.alloc_success),
            alloc_postponed: self.alloc_postponed.saturating_sub(earlier.alloc_postponed),
            pcie_bulk_transfers: self
                .pcie_bulk_transfers
                .saturating_sub(earlier.pcie_bulk_transfers),
            pcie_bulk_bytes: self.pcie_bulk_bytes.saturating_sub(earlier.pcie_bulk_bytes),
            pcie_small_transactions: self
                .pcie_small_transactions
                .saturating_sub(earlier.pcie_small_transactions),
            pcie_small_bytes: self
                .pcie_small_bytes
                .saturating_sub(earlier.pcie_small_bytes),
        }
    }
}

/// Histogram of per-location update counts, used by the cost model's
/// contention term.
///
/// Contended atomic updates serialize. How much that hurts depends on how
/// many updates land on the same location *concurrently*, which in a
/// throughput model is `n_loc / n_total * threads`. A location only contends
/// once its update count exceeds `n_total / threads`, so the same histogram
/// yields different penalties for a 10,240-thread GPU and an 8-thread CPU —
/// exactly the asymmetry the paper reports for Word Count (§VI-B).
#[derive(Debug, Clone, Default)]
pub struct ContentionHistogram {
    /// `(updates_per_location, number_of_locations_with_that_count)`,
    /// ascending by update count; locations with zero updates are omitted.
    buckets: Vec<(u64, u64)>,
    /// Total updates across all locations.
    total: u64,
}

impl ContentionHistogram {
    /// Build from raw per-location counts (zeros are skipped).
    pub fn from_counts<I: IntoIterator<Item = u64>>(counts: I) -> Self {
        let mut map = std::collections::BTreeMap::new();
        let mut total = 0u64;
        for c in counts {
            if c == 0 {
                continue;
            }
            *map.entry(c).or_insert(0u64) += 1;
            total += c;
        }
        ContentionHistogram {
            buckets: map.into_iter().collect(),
            total,
        }
    }

    /// Total updates recorded.
    pub fn total_updates(&self) -> u64 {
        self.total
    }

    /// Number of distinct locations updated at least once.
    pub fn locations(&self) -> u64 {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }

    /// Σ over locations of `max(0, count - threshold)`: the number of
    /// updates that arrive while another update to the same location is (in
    /// expectation) in flight, i.e. the serialized excess.
    pub fn excess_above(&self, threshold: u64) -> u64 {
        self.buckets
            .iter()
            .map(|&(c, n)| c.saturating_sub(threshold).saturating_mul(n))
            .sum()
    }

    /// Largest per-location update count (0 when empty).
    pub fn max_count(&self) -> u64 {
        self.buckets.last().map(|&(c, _)| c).unwrap_or(0)
    }

    /// Add one more updated location with `count` updates (e.g. a central
    /// allocator's bump pointer, which every allocation touches).
    pub fn add_location(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        match self.buckets.binary_search_by_key(&count, |&(c, _)| c) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (count, 1)),
        }
        self.total += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.add_tasks(3);
        m.add_compute_units(100);
        m.add_device_bytes(64);
        m.add_chain_hops(2);
        let s = m.snapshot();
        assert_eq!(s.tasks, 3);
        assert_eq!(s.compute_units, 100);
        assert_eq!(s.device_bytes, 64);
        assert_eq!(s.chain_hops, 2);
        m.reset();
        assert_eq!(m.snapshot(), Snapshot::default());
    }

    #[test]
    fn restore_rolls_counters_back_to_a_snapshot() {
        let m = Metrics::new();
        m.add_tasks(10);
        m.add_device_bytes(640);
        m.add_alloc_success(4);
        let checkpoint = m.snapshot();
        m.add_tasks(99);
        m.add_pcie_bulk_bytes(1 << 20);
        m.restore(&checkpoint);
        assert_eq!(m.snapshot(), checkpoint);
    }

    #[test]
    fn snapshot_delta_attributes_phase() {
        let m = Metrics::new();
        m.add_tasks(5);
        let before = m.snapshot();
        m.add_tasks(7);
        m.add_pcie_bulk_bytes(1_000);
        let after = m.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.tasks, 7);
        assert_eq!(d.pcie_bulk_bytes, 1_000);
    }

    #[test]
    fn concurrent_updates_are_all_counted() {
        let m = Arc::new(Metrics::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.add_compute_units(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.snapshot().compute_units, 80_000);
    }

    #[test]
    fn histogram_excess_matches_hand_computation() {
        // counts: one location with 10 updates, three with 2, five with 1.
        let counts = [10u64, 2, 2, 2, 1, 1, 1, 1, 1];
        let h = ContentionHistogram::from_counts(counts);
        assert_eq!(h.total_updates(), 21);
        assert_eq!(h.locations(), 9);
        assert_eq!(h.max_count(), 10);
        // threshold 1: (10-1) + 3*(2-1) = 12
        assert_eq!(h.excess_above(1), 12);
        // threshold 2: only the hot location: 8
        assert_eq!(h.excess_above(2), 8);
        // threshold >= max: no excess
        assert_eq!(h.excess_above(10), 0);
        assert_eq!(h.excess_above(u64::MAX), 0);
    }

    #[test]
    fn histogram_ignores_zero_counts() {
        let h = ContentionHistogram::from_counts([0u64, 0, 3]);
        assert_eq!(h.locations(), 1);
        assert_eq!(h.total_updates(), 3);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = ContentionHistogram::from_counts(std::iter::empty::<u64>());
        assert_eq!(h.total_updates(), 0);
        assert_eq!(h.excess_above(0), 0);
        assert_eq!(h.max_count(), 0);
    }
}
