//! Simulated time.
//!
//! All timing results reported by the benchmark harness are *simulated*
//! durations derived from deterministic event counts through the cost model
//! (see [`crate::cost`]). `SimTime` is a nanosecond-resolution duration
//! newtype used throughout; it is deliberately separate from
//! `std::time::Duration` so that simulated and wall-clock quantities cannot
//! be mixed up by accident.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A simulated duration with nanosecond resolution.
///
/// Arithmetic saturates rather than overflowing: the simulator adds many
/// independently-computed terms and a saturated value is far easier to spot
/// (and debug) than a wrapped one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    nanos: u64,
}

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime { nanos: 0 };

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime { nanos }
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime {
            nanos: micros.saturating_mul(1_000),
        }
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime {
            nanos: millis.saturating_mul(1_000_000),
        }
    }

    /// Construct from (possibly fractional) seconds. Negative or NaN inputs
    /// clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimTime { nanos: u64::MAX }
        } else {
            SimTime {
                nanos: nanos as u64,
            }
        }
    }

    /// Whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Duration in seconds as a float (for reporting and ratio computation).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// `self / other`, returning `f64::INFINITY` when `other` is zero.
    ///
    /// Used for speedup computation in the harness; a zero denominator means
    /// the baseline did no modelled work, which we surface as infinity
    /// rather than panicking mid-report.
    #[inline]
    pub fn ratio(self, other: SimTime) -> f64 {
        if other.nanos == 0 {
            return f64::INFINITY;
        }
        self.nanos as f64 / other.nanos as f64
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime {
            nanos: self.nanos.saturating_add(rhs.nanos),
        }
    }

    /// The larger of the two durations.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self.nanos >= rhs.nanos {
            self
        } else {
            rhs
        }
    }

    /// The smaller of the two durations.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self.nanos <= rhs.nanos {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime {
            nanos: self.nanos.saturating_mul(rhs),
        }
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime {
            nanos: self.nanos / rhs.max(1),
        }
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, SimTime::saturating_add)
    }
}

impl fmt::Display for SimTime {
    /// Human-readable rendering with an auto-selected unit, matching the
    /// granularity the paper's tables use (e.g. `1.22s`, `14.8s`, `0.07s`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.nanos;
        if n >= 1_000_000_000 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else if n >= 1_000_000 {
            write!(f, "{:.2}ms", n as f64 / 1e6)
        } else if n >= 1_000 {
            write!(f, "{:.2}us", n as f64 / 1e3)
        } else {
            write!(f, "{}ns", n)
        }
    }
}

/// A monotonically accumulating simulated clock.
///
/// Sections of the simulated run advance the clock by the durations the cost
/// model assigns to them. The clock itself is trivially simple; it exists so
/// call sites read as time accounting rather than bare arithmetic.
#[derive(Debug, Default, Clone)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock by `dt` and return the new time.
    #[inline]
    pub fn advance(&mut self, dt: SimTime) -> SimTime {
        self.now += dt;
        self.now
    }

    /// Reset the clock to zero.
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_nanos(1_500).as_nanos(), 1_500);
        assert_eq!(SimTime::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_clamps_garbage() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY).as_nanos(), u64::MAX);
    }

    #[test]
    fn arithmetic_saturates() {
        let big = SimTime::from_nanos(u64::MAX - 1);
        assert_eq!((big + big).as_nanos(), u64::MAX);
        assert_eq!((big * 3).as_nanos(), u64::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_nanos(5), SimTime::ZERO);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let a = SimTime::from_nanos(10);
        assert!(a.ratio(SimTime::ZERO).is_infinite());
        assert!((a.ratio(SimTime::from_nanos(5)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_sum() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: SimTime = [a, b, a].into_iter().sum();
        assert_eq!(total.as_nanos(), 40);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimTime::from_nanos(5));
        c.advance(SimTime::from_nanos(7));
        assert_eq!(c.now().as_nanos(), 12);
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn display_selects_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_nanos(12_345).to_string(), "12.35us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimTime::from_secs_f64(1.22).to_string(), "1.22s");
    }

    #[test]
    fn div_rounds_down_and_guards_zero() {
        let t = SimTime::from_nanos(10);
        assert_eq!((t / 3).as_nanos(), 3);
        assert_eq!((t / 0).as_nanos(), 10); // divisor clamped to 1
    }
}
