//! Epoch-based shadow-memory sanitizer for the simulated device.
//!
//! SEPO's correctness argument rests on an access *discipline* over the
//! device heap (see `sepo-alloc`'s safety model): entries are plain-written
//! only while private to the inserting warp, made reachable by a single
//! Release CAS on a bucket head, and after that touched only through reads
//! or word atomics — until an iteration boundary evicts their page, after
//! which device code must never touch them again. Nothing in the simulator
//! *checks* that discipline; this module does.
//!
//! Data-structure code declares every logically-shared access through
//! [`crate::charge::Charge::access`] (a default-no-op hook, so sinks that
//! don't care pay nothing and simulated costs are untouched). Declared
//! events carry a [`ShadowAddr`] — a *logical* address, independent of
//! physical page reuse — plus an [`AccessKind`], the issuing warp and lane.
//! Events buffer in the warp tally, fold into the launch's metric shards,
//! and are merged in slot order at launch retirement into the sanitizer,
//! which replays them against a per-address state machine:
//!
//! * Each launch is one **epoch**. Two warps of the same epoch are
//!   logically concurrent (SIMT warps have no intra-launch ordering);
//!   different epochs are separated by a launch boundary, which the
//!   simulated device treats as a full synchronization point.
//! * A plain write makes the address *owned* by the writing warp for the
//!   rest of its epoch. Any plain access from another warp in the same
//!   epoch is a race ([`FindingKind::ConcurrentPlainAccess`]); an atomic
//!   from another warp in the same epoch is a mixed plain/atomic conflict
//!   ([`FindingKind::MixedPlainAtomic`]).
//! * An atomic or publishing CAS moves the address to *published*: from
//!   then on plain writes to it are mixed-access findings — published words
//!   may only be read or updated atomically.
//! * An [`AccessKind::Evicted`] event retires a page's logical identity.
//!   Any later *device* access to that page is a use-after-evict
//!   ([`FindingKind::UseAfterEvict`]). Host-side access (the eviction and
//!   rebuild machinery itself, declared with [`HOST_WARP`]) stays legal:
//!   iteration boundaries are quiescent, so the host may rewrite links of
//!   kept entries or read evicted images freely.
//!
//! Zero findings under a deterministic schedule plus byte-identical replay
//! (`ExecMode::ParallelDeterministic`) means the *declared* access stream
//! of that schedule is race-free; under `Parallel` mode the merge order of
//! shards is not schedule-true, so findings remain sound per-warp but
//! witness ordering is best-effort. The sanitizer charges no simulated
//! cost, so results are byte-identical with it on or off.

use crate::charge::Charge;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Logical address of a simulated-device word the discipline covers.
///
/// Heap-resident addresses ([`ShadowAddr::Entry`], [`ShadowAddr::HeapCursor`],
/// [`ShadowAddr::Page`]) are keyed by the page's *host identity* (the
/// monotone id the heap stamps at acquisition), not its physical index —
/// so a physical page recycled after eviction never aliases its previous
/// tenant, and "evicted" is a property of the logical page forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShadowAddr {
    /// A bucket-head word of the (single) hash table under test.
    BucketHead(u32),
    /// One 64-bit word of the driver's done-bitmap.
    BitmapWord(u32),
    /// A page's bump cursor, keyed by the page's host identity.
    HeapCursor(u64),
    /// An entry (its base word stands for the whole record), keyed by the
    /// owning page's host identity plus the entry's byte offset.
    Entry {
        /// Host identity of the owning page.
        page: u64,
        /// Entry base offset within the page.
        offset: u32,
    },
    /// A whole page's lifecycle marker (used with [`AccessKind::Evicted`]).
    Page(u64),
}

impl ShadowAddr {
    /// The page identity this address lives on, if heap-resident.
    fn page(&self) -> Option<u64> {
        match *self {
            ShadowAddr::Entry { page, .. }
            | ShadowAddr::HeapCursor(page)
            | ShadowAddr::Page(page) => Some(page),
            ShadowAddr::BucketHead(_) | ShadowAddr::BitmapWord(_) => None,
        }
    }
}

impl fmt::Display for ShadowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ShadowAddr::BucketHead(b) => write!(f, "bucket-head[{b}]"),
            ShadowAddr::BitmapWord(w) => write!(f, "bitmap-word[{w}]"),
            ShadowAddr::HeapCursor(p) => write!(f, "heap-cursor[page #{p}]"),
            ShadowAddr::Entry { page, offset } => write!(f, "entry[page #{page} +{offset}]"),
            ShadowAddr::Page(p) => write!(f, "page[#{p}]"),
        }
    }
}

/// What kind of access a [`Charge::access`] declaration describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Non-atomic read.
    PlainRead,
    /// Non-atomic write (legal only while the address is warp-private).
    PlainWrite,
    /// Word atomic (load/RMW) that does not newly publish the address.
    Atomic,
    /// The Release CAS (or equivalent) that makes the address — and the
    /// data it points at — reachable by other warps.
    CasPublish,
    /// The page behind this address was evicted to the host heap; its
    /// logical identity is dead to device code from here on.
    Evicted,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::PlainRead => "plain read",
            AccessKind::PlainWrite => "plain write",
            AccessKind::Atomic => "atomic",
            AccessKind::CasPublish => "publishing CAS",
            AccessKind::Evicted => "evict",
        })
    }
}

/// Sentinel warp index for host-side (iteration-boundary) accesses: the
/// device is quiescent, so race rules do not apply and evicted pages are
/// legal to touch.
pub const HOST_WARP: u32 = u32::MAX;

/// Sentinel lane index for warp-level accesses (e.g. combiner flushes at
/// warp retirement, which act for the whole warp rather than one lane).
pub const WARP_LEVEL_LANE: u32 = crate::spec::WARP_SIZE as u32;

/// One declared access, as buffered in the warp tallies and merged at
/// launch retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowEvent {
    /// Logical address accessed.
    pub addr: ShadowAddr,
    /// Kind of access.
    pub kind: AccessKind,
    /// Issuing warp ([`HOST_WARP`] for host-side machinery).
    pub warp: u32,
    /// Issuing lane ([`WARP_LEVEL_LANE`] for warp-retirement work).
    pub lane: u32,
}

/// Category of a sanitizer finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Plain access raced a same-epoch plain write from another warp
    /// without an intervening atomic publish.
    ConcurrentPlainAccess,
    /// Plain and atomic access mixed on the same word within an epoch, or
    /// a plain write to an already-published word.
    MixedPlainAtomic,
    /// Device access to a page after its eviction to the host heap.
    UseAfterEvict,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FindingKind::ConcurrentPlainAccess => "concurrent plain access",
            FindingKind::MixedPlainAtomic => "mixed plain/atomic access",
            FindingKind::UseAfterEvict => "use after evict",
        })
    }
}

/// A witness trace for one finding: which access, by whom, when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Category.
    pub kind: FindingKind,
    /// Offending address.
    pub addr: ShadowAddr,
    /// The access that completed the violation.
    pub access: AccessKind,
    /// Issuing warp of the offending access.
    pub warp: u32,
    /// Issuing lane of the offending access.
    pub lane: u32,
    /// Launch epoch (1-based, counted per sanitizer).
    pub epoch: u64,
    /// SEPO driver iteration in force (0 outside a driver run).
    pub iteration: u32,
    /// What the shadow state knew about the address beforehand.
    pub prior: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} by warp {} lane {} on {} at iteration {} (epoch {}); prior: {}",
            self.kind,
            self.access,
            self.warp,
            self.lane,
            self.addr,
            self.iteration,
            self.epoch,
            self.prior
        )
    }
}

/// Aggregated sanitizer outcome: counts per category plus the first few
/// witness traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Total declared accesses checked.
    pub events_checked: u64,
    /// Total findings across all categories.
    pub findings_total: u64,
    /// [`FindingKind::ConcurrentPlainAccess`] count.
    pub concurrent_plain: u64,
    /// [`FindingKind::MixedPlainAtomic`] count.
    pub mixed_plain_atomic: u64,
    /// [`FindingKind::UseAfterEvict`] count.
    pub use_after_evict: u64,
    /// First [`ShadowSanitizer::MAX_WITNESSES`] findings, in detection order.
    pub witnesses: Vec<Finding>,
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} finding(s) over {} access(es) \
             (concurrent-plain {}, mixed-plain-atomic {}, use-after-evict {})",
            self.findings_total,
            self.events_checked,
            self.concurrent_plain,
            self.mixed_plain_atomic,
            self.use_after_evict
        )?;
        for w in &self.witnesses {
            write!(f, "\n  - {w}")?;
        }
        Ok(())
    }
}

/// Shadow state of one logical address. Absence from the cell map means
/// *fresh*: never accessed (or only ever host-accessed before any device
/// write).
#[derive(Debug, Clone, Copy)]
enum CellState {
    /// Plain-written by `warp` during `epoch` and not yet published; private
    /// to that warp for the rest of the epoch.
    Owned { warp: u32, epoch: u64 },
    /// Published (or only ever touched atomically): shared, read/atomic
    /// access only.
    Published,
}

#[derive(Debug, Default)]
struct Inner {
    /// Launch counter; bumped once per [`ShadowSanitizer::ingest`].
    epoch: u64,
    cells: HashMap<ShadowAddr, CellState>,
    /// Host identities of evicted pages (identities are never reused).
    evicted: HashSet<u64>,
    events_checked: u64,
    concurrent_plain: u64,
    mixed_plain_atomic: u64,
    use_after_evict: u64,
    witnesses: Vec<Finding>,
}

impl Inner {
    fn findings_total(&self) -> u64 {
        self.concurrent_plain + self.mixed_plain_atomic + self.use_after_evict
    }

    fn finding(&mut self, kind: FindingKind, ev: ShadowEvent, iteration: u32, prior: String) {
        match kind {
            FindingKind::ConcurrentPlainAccess => self.concurrent_plain += 1,
            FindingKind::MixedPlainAtomic => self.mixed_plain_atomic += 1,
            FindingKind::UseAfterEvict => self.use_after_evict += 1,
        }
        if self.witnesses.len() < ShadowSanitizer::MAX_WITNESSES {
            self.witnesses.push(Finding {
                kind,
                addr: ev.addr,
                access: ev.kind,
                warp: ev.warp,
                lane: ev.lane,
                epoch: self.epoch,
                iteration,
                prior,
            });
        }
    }

    fn apply(&mut self, ev: ShadowEvent, iteration: u32) {
        self.events_checked += 1;
        let host = ev.warp == HOST_WARP;

        if let AccessKind::Evicted = ev.kind {
            if let Some(p) = ev.addr.page() {
                self.evicted.insert(p);
            }
            return;
        }
        if let Some(p) = ev.addr.page() {
            if self.evicted.contains(&p) {
                if !host {
                    self.finding(
                        FindingKind::UseAfterEvict,
                        ev,
                        iteration,
                        format!("page #{p} was evicted to the host heap"),
                    );
                }
                // Host access to evicted data (eviction machinery, host
                // queries over stored images) is always legal.
                return;
            }
        }
        if host {
            // Iteration boundaries are quiescent: whatever the host leaves
            // behind is published state for the next epoch.
            self.cells.insert(ev.addr, CellState::Published);
            return;
        }

        let epoch = self.epoch;
        let state = self.cells.get(&ev.addr).copied();
        match ev.kind {
            AccessKind::PlainWrite => match state {
                Some(CellState::Owned { warp, epoch: e }) if e == epoch && warp != ev.warp => {
                    self.finding(
                        FindingKind::ConcurrentPlainAccess,
                        ev,
                        iteration,
                        format!("warp {warp} holds an unpublished plain write from this epoch"),
                    );
                }
                Some(CellState::Published) => {
                    self.finding(
                        FindingKind::MixedPlainAtomic,
                        ev,
                        iteration,
                        "address was published; published words allow only read/atomic access"
                            .to_string(),
                    );
                }
                _ => {
                    self.cells.insert(
                        ev.addr,
                        CellState::Owned {
                            warp: ev.warp,
                            epoch,
                        },
                    );
                }
            },
            AccessKind::PlainRead => {
                if let Some(CellState::Owned { warp, epoch: e }) = state {
                    if e == epoch && warp != ev.warp {
                        self.finding(
                            FindingKind::ConcurrentPlainAccess,
                            ev,
                            iteration,
                            format!("warp {warp} holds an unpublished plain write from this epoch"),
                        );
                    }
                }
            }
            AccessKind::Atomic | AccessKind::CasPublish => {
                if let Some(CellState::Owned { warp, epoch: e }) = state {
                    if e == epoch && warp != ev.warp {
                        self.finding(
                            FindingKind::MixedPlainAtomic,
                            ev,
                            iteration,
                            format!("warp {warp} holds an unpublished plain write from this epoch"),
                        );
                    }
                }
                self.cells.insert(ev.addr, CellState::Published);
            }
            AccessKind::Evicted => unreachable!("handled above"),
        }
    }
}

/// The shadow-memory sanitizer. One instance covers one table/driver run;
/// attach it to an [`crate::executor::Executor`] via
/// [`crate::executor::Executor::with_shadow`] and it receives every
/// declared access at each launch's retirement.
pub struct ShadowSanitizer {
    inner: parking_lot::Mutex<Inner>,
    /// Driver-iteration label stamped onto findings (display only).
    iteration: AtomicU32,
}

impl fmt::Debug for ShadowSanitizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ShadowSanitizer")
            .field("epoch", &inner.epoch)
            .field("events_checked", &inner.events_checked)
            .field("findings", &inner.findings_total())
            .finish()
    }
}

impl Default for ShadowSanitizer {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowSanitizer {
    /// Witness traces retained per run (counts keep accumulating past this).
    pub const MAX_WITNESSES: usize = 8;

    pub fn new() -> Self {
        ShadowSanitizer {
            inner: parking_lot::Mutex::new(Inner::default()),
            iteration: AtomicU32::new(0),
        }
    }

    /// Label subsequent findings with the driver iteration in force.
    pub fn set_iteration(&self, iteration: u32) {
        self.iteration.store(iteration, Ordering::Relaxed);
    }

    /// Merge one retired launch's declared accesses (in slot order) and
    /// advance the epoch. Called by the executor; not normally user code.
    pub fn ingest(&self, events: Vec<ShadowEvent>) {
        let iteration = self.iteration.load(Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        for ev in events {
            inner.apply(ev, iteration);
        }
    }

    /// Model a device reset during hard-fault recovery: the simulated
    /// device's memory (and hence all per-word shadow state) is rebuilt
    /// from the last iteration-boundary checkpoint, so every cell's
    /// ownership/publication history is dropped. The evicted-page identity
    /// set is kept — host identities are never reused, and pages evicted
    /// before the checkpoint stay evicted across the reset — as are the
    /// cumulative event and finding counters.
    pub fn device_reset(&self) {
        self.inner.lock().cells.clear();
    }

    /// Declare one host-side access at the current epoch (race rules do not
    /// apply; see [`HOST_WARP`]).
    pub fn record_host(&self, addr: ShadowAddr, kind: AccessKind) {
        let iteration = self.iteration.load(Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.apply(
            ShadowEvent {
                addr,
                kind,
                warp: HOST_WARP,
                lane: 0,
            },
            iteration,
        );
    }

    /// A [`Charge`] sink that feeds [`ShadowSanitizer::record_host`] — hand
    /// it to iteration-boundary table operations (eviction, rebuilds) so
    /// host-side accesses are declared without race rules.
    pub fn host_charge(&self) -> HostCharge<'_> {
        HostCharge(self)
    }

    /// Total findings so far.
    pub fn finding_count(&self) -> u64 {
        self.inner.lock().findings_total()
    }

    /// Snapshot counts and witnesses.
    pub fn report(&self) -> SanitizerReport {
        let inner = self.inner.lock();
        SanitizerReport {
            events_checked: inner.events_checked,
            findings_total: inner.findings_total(),
            concurrent_plain: inner.concurrent_plain,
            mixed_plain_atomic: inner.mixed_plain_atomic,
            use_after_evict: inner.use_after_evict,
            witnesses: inner.witnesses.clone(),
        }
    }
}

/// Host-side charge sink: declares accesses to a [`ShadowSanitizer`] under
/// [`HOST_WARP`] and discards all simulated costs (iteration-boundary work
/// is accounted elsewhere).
#[derive(Debug)]
pub struct HostCharge<'a>(&'a ShadowSanitizer);

impl Charge for HostCharge<'_> {
    #[inline]
    fn compute(&mut self, _: u64) {}
    #[inline]
    fn device_bytes(&mut self, _: u64) {}
    #[inline]
    fn chain_hops(&mut self, _: u64) {}
    #[inline]
    fn access(&mut self, addr: ShadowAddr, kind: AccessKind) {
        self.0.record_host(addr, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ExecMode, Executor};
    use crate::metrics::Metrics;
    use std::sync::Arc;

    fn dev(addr: ShadowAddr, kind: AccessKind, warp: u32, lane: u32) -> ShadowEvent {
        ShadowEvent {
            addr,
            kind,
            warp,
            lane,
        }
    }

    const ENTRY: ShadowAddr = ShadowAddr::Entry { page: 7, offset: 0 };
    const HEAD: ShadowAddr = ShadowAddr::BucketHead(3);

    #[test]
    fn disciplined_publish_sequence_is_clean() {
        let s = ShadowSanitizer::new();
        // Warp 0 fills a private entry and publishes it; warp 1 then reads
        // the chain through the head — the canonical insert discipline.
        s.ingest(vec![
            dev(ENTRY, AccessKind::PlainWrite, 0, 4),
            dev(HEAD, AccessKind::Atomic, 0, 4),
            dev(HEAD, AccessKind::CasPublish, 0, 4),
            dev(ENTRY, AccessKind::CasPublish, 0, 4),
            dev(HEAD, AccessKind::Atomic, 1, 0),
            dev(ENTRY, AccessKind::PlainRead, 1, 0),
            dev(ENTRY, AccessKind::Atomic, 1, 0),
        ]);
        assert_eq!(s.finding_count(), 0);
        assert_eq!(s.report().events_checked, 7);
    }

    #[test]
    fn concurrent_plain_writes_from_two_warps_are_a_race() {
        let s = ShadowSanitizer::new();
        s.ingest(vec![
            dev(ENTRY, AccessKind::PlainWrite, 0, 1),
            dev(ENTRY, AccessKind::PlainWrite, 2, 9),
        ]);
        let r = s.report();
        assert_eq!(r.concurrent_plain, 1);
        assert_eq!(r.witnesses[0].warp, 2);
        assert_eq!(r.witnesses[0].lane, 9);
    }

    #[test]
    fn same_warp_rewrites_its_private_entry_freely() {
        let s = ShadowSanitizer::new();
        s.ingest(vec![
            dev(ENTRY, AccessKind::PlainWrite, 0, 1),
            dev(ENTRY, AccessKind::PlainWrite, 0, 1),
            dev(ENTRY, AccessKind::PlainRead, 0, 5),
        ]);
        assert_eq!(s.finding_count(), 0);
    }

    #[test]
    fn launch_boundary_synchronizes_ownership() {
        let s = ShadowSanitizer::new();
        // An unpublished (abandoned) write in epoch 1 is not a race for
        // epoch-2 readers: the launch boundary orders them.
        s.ingest(vec![dev(ENTRY, AccessKind::PlainWrite, 0, 1)]);
        s.ingest(vec![dev(ENTRY, AccessKind::PlainRead, 5, 2)]);
        assert_eq!(s.finding_count(), 0);
    }

    #[test]
    fn plain_write_to_published_word_is_mixed_access() {
        let s = ShadowSanitizer::new();
        s.ingest(vec![
            dev(HEAD, AccessKind::CasPublish, 0, 0),
            dev(HEAD, AccessKind::PlainWrite, 1, 3),
        ]);
        let r = s.report();
        assert_eq!(r.mixed_plain_atomic, 1);
        assert_eq!(r.witnesses[0].kind, FindingKind::MixedPlainAtomic);
    }

    #[test]
    fn atomic_on_anothers_unpublished_write_is_mixed_access() {
        let s = ShadowSanitizer::new();
        s.ingest(vec![
            dev(ENTRY, AccessKind::PlainWrite, 0, 0),
            dev(ENTRY, AccessKind::Atomic, 3, 8),
        ]);
        assert_eq!(s.report().mixed_plain_atomic, 1);
    }

    #[test]
    fn device_touch_after_evict_is_flagged_but_host_touch_is_not() {
        let s = ShadowSanitizer::new();
        s.set_iteration(4);
        s.ingest(vec![
            dev(ENTRY, AccessKind::PlainWrite, 0, 0),
            dev(ENTRY, AccessKind::CasPublish, 0, 0),
        ]);
        s.record_host(ShadowAddr::Page(7), AccessKind::Evicted);
        s.record_host(ENTRY, AccessKind::PlainRead); // eviction machinery: fine
        assert_eq!(s.finding_count(), 0);
        s.ingest(vec![dev(ENTRY, AccessKind::PlainRead, 1, 6)]);
        let r = s.report();
        assert_eq!(r.use_after_evict, 1);
        let w = &r.witnesses[0];
        assert_eq!((w.warp, w.lane, w.iteration), (1, 6, 4));
        assert!(w.to_string().contains("use after evict"), "{w}");
    }

    #[test]
    fn host_rebuild_leaves_published_state_behind() {
        let s = ShadowSanitizer::new();
        // Host rewrites a kept entry's links between iterations; device
        // reads and atomics on it next epoch are legal, a plain write not.
        s.record_host(ENTRY, AccessKind::PlainWrite);
        s.ingest(vec![
            dev(ENTRY, AccessKind::PlainRead, 0, 0),
            dev(ENTRY, AccessKind::Atomic, 1, 1),
        ]);
        assert_eq!(s.finding_count(), 0);
        s.ingest(vec![dev(ENTRY, AccessKind::PlainWrite, 2, 2)]);
        assert_eq!(s.report().mixed_plain_atomic, 1);
    }

    #[test]
    fn device_reset_drops_cell_history_but_keeps_evictions() {
        let s = ShadowSanitizer::new();
        // Pre-reset: a published entry and an evicted page.
        s.ingest(vec![
            dev(ENTRY, AccessKind::PlainWrite, 0, 0),
            dev(ENTRY, AccessKind::CasPublish, 0, 0),
        ]);
        s.record_host(ShadowAddr::Page(9), AccessKind::Evicted);
        let events_before = s.report().events_checked;
        s.device_reset();
        // Replaying the insert's plain write to the (previously published)
        // entry is legal on the rebuilt device — no MixedPlainAtomic.
        s.ingest(vec![
            dev(ENTRY, AccessKind::PlainWrite, 0, 0),
            dev(ENTRY, AccessKind::CasPublish, 0, 0),
        ]);
        assert_eq!(s.finding_count(), 0);
        // But a device touch of a page evicted before the reset still fires.
        let gone = ShadowAddr::Entry { page: 9, offset: 0 };
        s.ingest(vec![dev(gone, AccessKind::PlainRead, 1, 1)]);
        assert_eq!(s.report().use_after_evict, 1);
        // Cumulative counters survived the reset.
        assert!(s.report().events_checked > events_before);
    }

    #[test]
    fn witness_list_is_capped_but_counts_are_not() {
        let s = ShadowSanitizer::new();
        let mut events = vec![dev(ENTRY, AccessKind::PlainWrite, 0, 0)];
        for i in 0..20 {
            events.push(dev(ENTRY, AccessKind::PlainWrite, 1 + i, 0));
        }
        s.ingest(events);
        let r = s.report();
        assert_eq!(r.findings_total, 20);
        assert_eq!(r.witnesses.len(), ShadowSanitizer::MAX_WITNESSES);
    }

    /// Negative test (ISSUE 4): a deliberately *broken* bucket-head publish
    /// — warp 0 stores the head with a plain write instead of a CAS — must
    /// be caught when warp 1 reads the same head in the same launch, with a
    /// warp/lane witness. Runs through the real executor so the event path
    /// (lane ctx → warp tally → shard merge → ingest) is the one under test.
    #[test]
    fn broken_bucket_head_publish_is_detected_through_the_executor() {
        let sanitizer = Arc::new(ShadowSanitizer::new());
        let m = Arc::new(Metrics::new());
        let e = Executor::new(ExecMode::Deterministic, m).with_shadow(Arc::clone(&sanitizer));
        // 64 tasks = 2 warps. Warp 0 "publishes" an entry with a plain
        // store to the bucket head; warp 1 loads the head atomically.
        e.launch(64, |lane| {
            let warp_0 = lane.task() < 32;
            if warp_0 {
                lane.access(
                    ShadowAddr::Entry { page: 1, offset: 0 },
                    AccessKind::PlainWrite,
                );
                lane.access(ShadowAddr::BucketHead(0), AccessKind::PlainWrite); // the bug
            } else {
                lane.access(ShadowAddr::BucketHead(0), AccessKind::Atomic);
            }
        });
        let r = sanitizer.report();
        assert!(r.findings_total >= 1, "broken publish must be flagged: {r}");
        assert!(r.mixed_plain_atomic >= 1, "{r}");
        let w = r
            .witnesses
            .iter()
            .find(|w| w.addr == ShadowAddr::BucketHead(0))
            .expect("a bucket-head witness");
        assert_eq!(w.warp, 1, "the atomic reader completes the violation");
        assert!(w.lane < 32);
    }

    #[test]
    fn correct_cas_publish_through_the_executor_is_clean() {
        let sanitizer = Arc::new(ShadowSanitizer::new());
        let m = Arc::new(Metrics::new());
        let e = Executor::new(ExecMode::Deterministic, m).with_shadow(Arc::clone(&sanitizer));
        e.launch(64, |lane| {
            let entry = ShadowAddr::Entry {
                page: 1,
                offset: lane.task() as u32 * 64,
            };
            lane.access(entry, AccessKind::PlainWrite);
            lane.access(ShadowAddr::BucketHead(0), AccessKind::Atomic);
            lane.access(ShadowAddr::BucketHead(0), AccessKind::CasPublish);
            lane.access(entry, AccessKind::CasPublish);
        });
        assert_eq!(sanitizer.finding_count(), 0);
    }
}
