//! Hardware specifications for the simulated system.
//!
//! Default values are calibrated to the testbed of the SEPO paper (§VI-A):
//! an Nvidia GeForce GTX 780ti (2,880 CUDA cores @ 875 MHz, 3 GB GDDR5 @
//! 336 GB/s) connected over PCIe Gen3 x16 to a 3.8 GHz quad-core Intel Xeon
//! E5 with 8 hardware threads and 16 GB of quad-channel DDR3-1800.
//!
//! A global [`scale`](SystemSpec::scaled) knob shrinks *capacities* (device
//! memory, host memory) together with the dataset sizes used by the
//! evaluation harness so that the experiments run in seconds while keeping
//! the paper's regime — a hash table that grows to several times the size of
//! device memory. Rates (bandwidths, frequencies) are never scaled: only
//! sizes are, so time *ratios* between configurations are preserved.

/// Number of lanes in a warp. Fixed at 32, as on all Nvidia GPUs including
/// the GTX 780ti used by the paper.
pub const WARP_SIZE: usize = 32;

/// Specification of the simulated GPU device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Total number of scalar cores (2,880 for the GTX 780ti).
    pub cores: u32,
    /// Core clock in Hz (875 MHz).
    pub clock_hz: u64,
    /// Total device memory in bytes (3 GB).
    pub memory_bytes: u64,
    /// Peak device memory bandwidth in bytes/second (336 GB/s).
    pub mem_bandwidth: u64,
    /// Fraction of peak memory bandwidth achievable by the irregular,
    /// pointer-chasing accesses of a chained hash table. Hash-table walks
    /// defeat coalescing, so effective bandwidth is a small fraction of
    /// peak; 1/8 is in line with published measurements of random access on
    /// Kepler-class parts.
    pub random_access_efficiency: f64,
    /// Number of resident threads the kernels are launched with. The paper
    /// tunes this per application ("configured to run with the number of GPU
    /// threads that result in the best execution time"); 10,240 — four
    /// thread blocks of 256 threads per SMX on 10 SMXs — is a representative
    /// operating point for Kepler and is what the cost model's contention
    /// term uses.
    pub resident_threads: u32,
    /// Serialized throughput cost of one contended atomic, in nanoseconds.
    /// GPU atomics to the same address serialize in the L2 atomic units at
    /// roughly 200-300 M ops/s on Kepler-class parts — ~4 ns per op once a
    /// location is hot.
    pub atomic_conflict_ns: f64,
    /// Extra cost charged per warp-divergence event (one event = one extra
    /// branch class executed by a warp), in nanoseconds. A divergent warp
    /// replays its long switch-case body once per distinct class — for the
    /// parse-heavy kernels modelled here that replay is several hundred
    /// nanoseconds of serialized work per class (the effect §VI-B blames
    /// for Inverted Index's poor GPU showing).
    pub divergence_ns: f64,
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec {
            cores: 2_880,
            clock_hz: 875_000_000,
            memory_bytes: 3 * GB,
            mem_bandwidth: 336 * GB,
            random_access_efficiency: 0.125,
            resident_threads: 10_240,
            atomic_conflict_ns: 4.0,
            divergence_ns: 400.0,
        }
    }
}

impl DeviceSpec {
    /// Aggregate scalar throughput in operations/second, derated by a factor
    /// accounting for instruction mix (the simple parse/hash/insert kernels
    /// of Big Data analytics retire well below one useful op per core per
    /// cycle; 0.5 is the derate used throughout).
    pub fn compute_ops_per_sec(&self) -> f64 {
        self.cores as f64 * self.clock_hz as f64 * 0.5
    }

    /// Effective bandwidth (bytes/s) for irregular hash-table traffic.
    pub fn random_access_bandwidth(&self) -> f64 {
        self.mem_bandwidth as f64 * self.random_access_efficiency
    }
}

/// Specification of the host CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Physical cores (4 on the paper's Xeon E5).
    pub cores: u32,
    /// Hardware threads (8 with hyper-threading).
    pub threads: u32,
    /// Clock in Hz (3.8 GHz).
    pub clock_hz: u64,
    /// Host memory size in bytes (16 GB).
    pub memory_bytes: u64,
    /// Peak host memory bandwidth in bytes/second (~57.6 GB/s for
    /// quad-channel DDR3-1800; the paper quotes 115 GB/s for Skylake in its
    /// motivation but the testbed is older).
    pub mem_bandwidth: u64,
    /// Fraction of peak bandwidth achieved by pointer-chasing hash-table
    /// accesses on the CPU. CPUs have large caches and out-of-order cores,
    /// so they tolerate irregularity better than GPUs: 0.35 vs the GPU's
    /// 0.125.
    pub random_access_efficiency: f64,
    /// Serialized cost of one contended atomic/lock round on the CPU, in
    /// nanoseconds (cache-line ping-pong between cores).
    pub atomic_conflict_ns: f64,
    /// Useful ops per hardware-thread cycle on branchy parse/insert code.
    /// Hyper-threads share ports and the code is branch/latency bound:
    /// 8 threads on 4 cores sustain ~0.9 useful ops/cycle/core.
    pub ops_per_cycle_per_thread: f64,
}

impl Default for HostSpec {
    fn default() -> Self {
        HostSpec {
            cores: 4,
            threads: 8,
            clock_hz: 3_800_000_000,
            memory_bytes: 16 * GB,
            mem_bandwidth: 57_600_000_000,
            random_access_efficiency: 0.35,
            atomic_conflict_ns: 60.0,
            ops_per_cycle_per_thread: 0.45,
        }
    }
}

impl HostSpec {
    /// Aggregate scalar throughput in operations/second across all hardware
    /// threads.
    pub fn compute_ops_per_sec(&self) -> f64 {
        self.threads as f64 * self.clock_hz as f64 * self.ops_per_cycle_per_thread
    }

    /// Effective bandwidth for irregular hash-table traffic on the host.
    pub fn random_access_bandwidth(&self) -> f64 {
        self.mem_bandwidth as f64 * self.random_access_efficiency
    }
}

/// Specification of the PCIe interconnect between host and device.
#[derive(Debug, Clone, PartialEq)]
pub struct PcieSpec {
    /// Effective bandwidth for large, pipelined DMA transfers, bytes/s.
    /// PCIe Gen3 x16 peaks at 15.75 GB/s; ~12 GB/s is the sustained figure
    /// for large cudaMemcpy transfers of the era.
    pub bulk_bandwidth: u64,
    /// Effective bandwidth for small (sub-page) transactions, bytes/s.
    /// Small transfers cannot amortize the protocol overhead; effective
    /// throughput collapses by a factor of ~5 even with deep memory-level
    /// parallelism across outstanding requests. This is the
    /// term that makes the pinned-memory alternative of Fig. 7 lose: "the
    /// data is transferred over many small PCIe transactions, which is much
    /// costlier than a few bulky PCIe transactions" (§VI-D).
    pub small_bandwidth: u64,
    /// Fixed per-transaction initiation latency in nanoseconds (driver +
    /// DMA engine + protocol round trip); ~1.2 µs for the era's stacks.
    pub transaction_latency_ns: u64,
}

impl Default for PcieSpec {
    fn default() -> Self {
        PcieSpec {
            bulk_bandwidth: 12 * GB,
            small_bandwidth: 2_400_000_000,
            transaction_latency_ns: 1_200,
        }
    }
}

const GB: u64 = 1_000_000_000;

/// Complete system specification: device + host + interconnect.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemSpec {
    pub device: DeviceSpec,
    pub host: HostSpec,
    pub pcie: PcieSpec,
    /// Capacity scale divisor applied by [`SystemSpec::scaled`]; 1 means
    /// paper-scale capacities.
    pub scale: u64,
}

impl SystemSpec {
    /// Paper-testbed specification at full scale.
    pub fn paper() -> Self {
        SystemSpec {
            scale: 1,
            ..Default::default()
        }
    }

    /// Return a copy with all *capacities* divided by `scale` (rates are
    /// untouched). The evaluation harness divides dataset sizes by the same
    /// factor, preserving the ratio of hash-table size to device memory that
    /// drives SEPO's iteration behaviour.
    pub fn scaled(scale: u64) -> Self {
        let scale = scale.max(1);
        let mut s = SystemSpec::paper();
        s.scale = scale;
        s.device.memory_bytes /= scale;
        s.host.memory_bytes /= scale;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_testbed() {
        let s = SystemSpec::paper();
        assert_eq!(s.device.cores, 2_880);
        assert_eq!(s.device.clock_hz, 875_000_000);
        assert_eq!(s.device.memory_bytes, 3 * GB);
        assert_eq!(s.device.mem_bandwidth, 336 * GB);
        assert_eq!(s.host.threads, 8);
        assert_eq!(s.host.clock_hz, 3_800_000_000);
        assert_eq!(s.scale, 1);
    }

    #[test]
    fn gpu_outclasses_cpu_on_raw_rates() {
        // The premise of the paper's motivation (§II): order-of-magnitude
        // more compute and ~6x the memory bandwidth on the GPU side.
        let s = SystemSpec::paper();
        let gpu = s.device.compute_ops_per_sec();
        let cpu = s.host.compute_ops_per_sec();
        assert!(gpu / cpu > 10.0, "gpu/cpu = {}", gpu / cpu);
        assert!(s.device.mem_bandwidth > 5 * s.host.mem_bandwidth);
    }

    #[test]
    fn scaling_divides_capacities_only() {
        let s = SystemSpec::scaled(256);
        let p = SystemSpec::paper();
        assert_eq!(s.device.memory_bytes, p.device.memory_bytes / 256);
        assert_eq!(s.host.memory_bytes, p.host.memory_bytes / 256);
        // Rates untouched.
        assert_eq!(s.device.mem_bandwidth, p.device.mem_bandwidth);
        assert_eq!(s.pcie.bulk_bandwidth, p.pcie.bulk_bandwidth);
        assert_eq!(s.scale, 256);
    }

    #[test]
    fn scale_zero_clamps_to_one() {
        assert_eq!(SystemSpec::scaled(0).scale, 1);
    }

    #[test]
    fn random_access_derates_gpu_more_than_cpu() {
        let s = SystemSpec::paper();
        assert!(s.device.random_access_efficiency < s.host.random_access_efficiency);
        // But absolute GPU random-access bandwidth still beats the CPU's.
        assert!(s.device.random_access_bandwidth() > s.host.random_access_bandwidth());
    }

    #[test]
    fn small_pcie_transactions_are_much_slower() {
        let p = PcieSpec::default();
        assert!(p.bulk_bandwidth / p.small_bandwidth >= 4);
    }
}
