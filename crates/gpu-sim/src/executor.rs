//! SIMT-style kernel executor.
//!
//! Kernels are Rust closures invoked once per *task* (≈ one input record,
//! the granularity at which SEPO postpones work). Tasks are grouped into
//! warps of [`WARP_SIZE`] consecutive lanes, the scheduling unit of the
//! simulated GPU:
//!
//! * In [`ExecMode::Parallel`], warps are executed concurrently by a pool of
//!   host worker threads. The data structures the kernel touches (hash
//!   table, allocator, bitmaps) therefore experience *real* concurrency —
//!   real atomics, real races over page space — which is what makes the
//!   postponement behaviour genuine rather than scripted.
//! * In [`ExecMode::Deterministic`], warps run in ascending order on the
//!   calling thread. The evaluation harness uses this mode so that reported
//!   iteration counts and transfer volumes are exactly reproducible.
//!
//! Lanes report events through [`LaneCtx`]; per-warp tallies are flushed to
//! the shared [`Metrics`] once per warp to keep host-side atomic traffic
//! negligible. Warp divergence is modelled by lanes declaring a *branch
//! class* (e.g. which arm of a parser's switch they took): a warp whose
//! lanes declare `k` distinct classes serializes `k` passes, recorded as
//! `k - 1` divergence events.

use crate::metrics::Metrics;
use crate::spec::WARP_SIZE;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How kernel launches are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Execute warps concurrently on `workers` host threads (0 = one per
    /// available CPU).
    Parallel { workers: usize },
    /// Execute warps sequentially in ascending warp order (bit-reproducible
    /// results; used by the evaluation harness).
    Deterministic,
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Parallel { workers: 0 }
    }
}

/// Per-warp event tally, flushed to [`Metrics`] when the warp retires.
#[derive(Debug, Default)]
struct WarpLocal {
    compute_units: u64,
    stream_bytes: u64,
    device_bytes: u64,
    chain_hops: u64,
    branch_classes: BTreeSet<u32>,
}

/// Handle through which a kernel lane reports its simulated-cost events.
#[derive(Debug)]
pub struct LaneCtx<'w> {
    task: usize,
    warp: &'w mut WarpLocal,
}

impl LaneCtx<'_> {
    /// Global task index of this lane.
    #[inline]
    pub fn task(&self) -> usize {
        self.task
    }

    /// Charge `units` of scalar compute work.
    #[inline]
    pub fn charge_compute(&mut self, units: u64) {
        self.warp.compute_units += units;
    }

    /// Record `bytes` of coalesced streaming reads (input records).
    #[inline]
    pub fn read_stream(&mut self, bytes: u64) {
        self.warp.stream_bytes += bytes;
    }

    /// Record `bytes` of irregular device-memory traffic.
    #[inline]
    pub fn touch_device(&mut self, bytes: u64) {
        self.warp.device_bytes += bytes;
    }

    /// Declare the branch class this lane took at a divergent branch.
    /// Distinct classes within one warp serialize.
    #[inline]
    pub fn branch_class(&mut self, class: u32) {
        self.warp.branch_classes.insert(class);
    }
}

impl crate::charge::Charge for LaneCtx<'_> {
    #[inline]
    fn compute(&mut self, units: u64) {
        self.charge_compute(units);
    }

    #[inline]
    fn device_bytes(&mut self, bytes: u64) {
        self.touch_device(bytes);
    }

    #[inline]
    fn chain_hops(&mut self, hops: u64) {
        self.warp.chain_hops += hops;
        self.warp.device_bytes += hops * 16; // a hop reads one dual link
    }
}

/// Statistics returned by a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchStats {
    /// Tasks executed by this launch.
    pub tasks: u64,
    /// Warps the tasks were grouped into.
    pub warps: u64,
    /// Divergence events recorded by this launch.
    pub divergence_events: u64,
}

/// The kernel executor. Cheap to clone; clones share the metrics sink.
#[derive(Debug, Clone)]
pub struct Executor {
    mode: ExecMode,
    metrics: Arc<Metrics>,
}

impl Executor {
    pub fn new(mode: ExecMode, metrics: Arc<Metrics>) -> Self {
        Executor { mode, metrics }
    }

    /// The metrics sink launches report into.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Execution mode in force.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Launch `kernel` over `n_tasks` tasks. Blocks until all warps retire.
    ///
    /// The kernel runs once per task and may freely share `Sync` state
    /// (hash table, allocator, bitmap) across lanes.
    pub fn launch<K>(&self, n_tasks: usize, kernel: K) -> LaunchStats
    where
        K: Fn(&mut LaneCtx<'_>) + Sync,
    {
        if n_tasks == 0 {
            return LaunchStats {
                tasks: 0,
                warps: 0,
                divergence_events: 0,
            };
        }
        let n_warps = n_tasks.div_ceil(WARP_SIZE);
        let divergence = match self.mode {
            ExecMode::Deterministic => {
                let mut div = 0u64;
                for w in 0..n_warps {
                    div += self.run_warp(w, n_tasks, &kernel);
                }
                div
            }
            ExecMode::Parallel { workers } => {
                let workers = if workers == 0 {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(4)
                } else {
                    workers
                };
                let workers = workers.min(n_warps).max(1);
                let next = AtomicUsize::new(0);
                let div_total = AtomicUsize::new(0);
                crossbeam::scope(|s| {
                    for _ in 0..workers {
                        s.spawn(|_| {
                            let mut local_div = 0u64;
                            loop {
                                let w = next.fetch_add(1, Ordering::Relaxed);
                                if w >= n_warps {
                                    break;
                                }
                                local_div += self.run_warp(w, n_tasks, &kernel);
                            }
                            div_total.fetch_add(local_div as usize, Ordering::Relaxed);
                        });
                    }
                })
                .expect("kernel worker panicked");
                div_total.load(Ordering::Relaxed) as u64
            }
        };
        self.metrics.add_tasks(n_tasks as u64);
        LaunchStats {
            tasks: n_tasks as u64,
            warps: n_warps as u64,
            divergence_events: divergence,
        }
    }

    /// Execute one warp's lanes serially; flush its tally; return its
    /// divergence events.
    fn run_warp<K>(&self, warp: usize, n_tasks: usize, kernel: &K) -> u64
    where
        K: Fn(&mut LaneCtx<'_>) + Sync,
    {
        let mut local = WarpLocal::default();
        let start = warp * WARP_SIZE;
        let end = (start + WARP_SIZE).min(n_tasks);
        for task in start..end {
            let mut ctx = LaneCtx {
                task,
                warp: &mut local,
            };
            kernel(&mut ctx);
        }
        let div = (local.branch_classes.len() as u64).saturating_sub(1);
        self.metrics.add_compute_units(local.compute_units);
        self.metrics.add_stream_bytes(local.stream_bytes);
        self.metrics.add_device_bytes(local.device_bytes);
        self.metrics.add_chain_hops(local.chain_hops);
        self.metrics.add_divergence_events(div);
        div
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn exec(mode: ExecMode) -> (Executor, Arc<Metrics>) {
        let m = Arc::new(Metrics::new());
        (Executor::new(mode, Arc::clone(&m)), m)
    }

    #[test]
    fn every_task_runs_exactly_once_parallel() {
        let (e, _) = exec(ExecMode::Parallel { workers: 4 });
        let n = 1_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        e.launch(n, |ctx| {
            hits[ctx.task()].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn every_task_runs_exactly_once_deterministic() {
        let (e, _) = exec(ExecMode::Deterministic);
        let n = 97; // not a multiple of warp size
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let stats = e.launch(n, |ctx| {
            hits[ctx.task()].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.tasks, 97);
        assert_eq!(stats.warps, 4); // ceil(97/32)
    }

    #[test]
    fn deterministic_mode_runs_in_task_order() {
        let (e, _) = exec(ExecMode::Deterministic);
        let order = parking_lot::Mutex::new(Vec::new());
        e.launch(100, |ctx| {
            order.lock().push(ctx.task());
        });
        let order = order.into_inner();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn charges_flow_into_metrics() {
        let (e, m) = exec(ExecMode::Deterministic);
        e.launch(10, |ctx| {
            ctx.charge_compute(5);
            ctx.read_stream(100);
            ctx.touch_device(8);
        });
        let s = m.snapshot();
        assert_eq!(s.tasks, 10);
        assert_eq!(s.compute_units, 50);
        assert_eq!(s.stream_bytes, 1_000);
        assert_eq!(s.device_bytes, 80);
    }

    #[test]
    fn uniform_branch_class_causes_no_divergence() {
        let (e, m) = exec(ExecMode::Deterministic);
        let stats = e.launch(64, |ctx| ctx.branch_class(7));
        assert_eq!(stats.divergence_events, 0);
        assert_eq!(m.snapshot().divergence_events, 0);
    }

    #[test]
    fn divergence_counts_extra_classes_per_warp() {
        let (e, m) = exec(ExecMode::Deterministic);
        // Lanes alternate between 4 classes: each full warp sees 4 distinct
        // classes => 3 events per warp; 2 warps => 6.
        let stats = e.launch(64, |ctx| ctx.branch_class((ctx.task() % 4) as u32));
        assert_eq!(stats.divergence_events, 6);
        assert_eq!(m.snapshot().divergence_events, 6);
    }

    #[test]
    fn divergence_respects_warp_boundaries() {
        let (e, _) = exec(ExecMode::Deterministic);
        // Class = warp index: uniform within each warp => no divergence.
        let stats = e.launch(320, |ctx| ctx.branch_class((ctx.task() / WARP_SIZE) as u32));
        assert_eq!(stats.divergence_events, 0);
    }

    #[test]
    fn empty_launch_is_a_noop() {
        let (e, m) = exec(ExecMode::Parallel { workers: 4 });
        let stats = e.launch(0, |_| panic!("kernel must not run"));
        assert_eq!(stats.tasks, 0);
        assert_eq!(m.snapshot().tasks, 0);
    }

    #[test]
    fn parallel_and_deterministic_agree_on_aggregates() {
        let run = |mode| {
            let (e, m) = exec(mode);
            e.launch(10_000, |ctx| {
                ctx.charge_compute((ctx.task() % 7) as u64);
                ctx.branch_class((ctx.task() % 3) as u32);
            });
            m.snapshot()
        };
        let par = run(ExecMode::Parallel { workers: 8 });
        let det = run(ExecMode::Deterministic);
        assert_eq!(par.compute_units, det.compute_units);
        assert_eq!(par.divergence_events, det.divergence_events);
        assert_eq!(par.tasks, det.tasks);
    }
}
