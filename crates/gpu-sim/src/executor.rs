//! SIMT-style kernel executor.
//!
//! Kernels are Rust closures invoked once per *task* (≈ one input record,
//! the granularity at which SEPO postpones work). Tasks are grouped into
//! warps of [`WARP_SIZE`] consecutive lanes, the scheduling unit of the
//! simulated GPU:
//!
//! * In [`ExecMode::Parallel`], warps are executed concurrently by the
//!   process-wide persistent [`pool`](crate::pool) (no threads are spawned
//!   per launch; warps are claimed in adaptive chunks). The data structures
//!   the kernel touches (hash table, allocator, bitmaps) therefore
//!   experience *real* concurrency — real atomics, real races over page
//!   space — which is what makes the postponement behaviour genuine rather
//!   than scripted.
//! * In [`ExecMode::Deterministic`], warps run in ascending order on the
//!   calling thread, so reported iteration counts and transfer volumes are
//!   exactly reproducible.
//! * [`ExecMode::ParallelDeterministic`] executes each launch exactly like
//!   `Deterministic` — warps in ascending order, on the calling thread, so
//!   per-launch event counts are byte-identical *by construction* — and
//!   signals that the surrounding harness may run independent simulations
//!   (separate tables, separate [`Metrics`]) concurrently on the pool via
//!   [`pool::scope`](crate::pool::scope). True warp-racing cannot keep
//!   counts like `chain_hops` bit-stable (they depend on chain insertion
//!   order), so parallelism is hoisted to the between-simulations level
//!   where there is no shared mutable state to race on.
//!
//! Lanes report events through [`LaneCtx`]; per-warp tallies accumulate
//! into a per-participant *shard* and each shard is flushed to the shared
//! [`Metrics`] **once per launch**, so the shared counters see a handful of
//! atomic adds per launch instead of five per warp.

use crate::faults::{FaultPlan, FaultSite, HardFaultError};
use crate::metrics::Metrics;
use crate::pool::{self, Work, WorkerPool};
use crate::shadow::{AccessKind, ShadowAddr, ShadowEvent, ShadowSanitizer, WARP_LEVEL_LANE};
use crate::spec::WARP_SIZE;
use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// How kernel launches are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Execute warps concurrently on the shared worker pool (`workers`
    /// caps this launch's participants; 0 = every pool worker plus the
    /// submitting thread). Results are exact, but event *schedules* (and
    /// schedule-dependent counts such as chain hops) vary run to run.
    Parallel { workers: usize },
    /// Execute warps sequentially in ascending warp order on the calling
    /// thread (bit-reproducible results).
    Deterministic,
    /// Per-launch execution identical to [`ExecMode::Deterministic`];
    /// declares that the harness parallelizes across independent
    /// simulations instead of within a launch. This is the evaluation
    /// harness's default: paper numbers stay exactly reproducible while
    /// wall-clock time drops with available cores.
    ParallelDeterministic,
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Parallel { workers: 0 }
    }
}

/// Per-warp event tally, folded into a participant shard when the warp
/// retires.
#[derive(Debug, Default)]
struct WarpLocal {
    compute_units: u64,
    stream_bytes: u64,
    device_bytes: u64,
    chain_hops: u64,
    smem_bytes: u64,
    combiner_hits: u64,
    combiner_flushes: u64,
    combiner_overflows: u64,
    head_cas_retries: u64,
    branch_classes: BTreeSet<u32>,
    /// This warp's index within the launch (stamps shadow events).
    warp_index: u32,
    /// Declared shadow accesses; `None` unless a sanitizer is attached, so
    /// unsanitized launches never allocate or push.
    shadow: Option<Vec<ShadowEvent>>,
}

/// Per-warp scratch hooks: the software analogue of a kernel's shared
/// memory. `init` runs once when a warp starts, producing warp-lifetime
/// state its lanes may access through [`LaneCtx::scratch_parts`]; `finish`
/// runs when the warp retires — before the launch returns, hence before
/// any iteration-boundary bookkeeping (eviction, audits, postponement
/// rescans) the caller performs after the launch.
pub struct WarpScratch<'s> {
    /// Build one warp's scratch state.
    pub init: &'s (dyn Fn() -> Box<dyn Any + Send> + Sync),
    /// Drain the scratch state at warp retirement, charging any final work
    /// to the warp's tally.
    pub finish: &'s (dyn Fn(&mut (dyn Any + Send), &mut dyn crate::charge::Charge) + Sync),
}

impl fmt::Debug for WarpScratch<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("WarpScratch { .. }")
    }
}

/// Handle through which a kernel lane reports its simulated-cost events.
#[derive(Debug)]
pub struct LaneCtx<'w> {
    task: usize,
    warp: &'w mut WarpLocal,
    scratch: Option<&'w mut (dyn Any + Send)>,
}

/// Charge sink borrowing only a lane's warp tally — what
/// [`LaneCtx::scratch_parts`] hands out so scratch state and the charge
/// sink can be used simultaneously.
#[derive(Debug)]
pub struct WarpCharge<'a> {
    warp: &'a mut WarpLocal,
}

impl crate::charge::Charge for WarpCharge<'_> {
    #[inline]
    fn compute(&mut self, units: u64) {
        self.warp.compute_units += units;
    }

    #[inline]
    fn device_bytes(&mut self, bytes: u64) {
        self.warp.device_bytes += bytes;
    }

    #[inline]
    fn chain_hops(&mut self, hops: u64) {
        self.warp.chain_hops += hops;
        self.warp.device_bytes += hops * 16; // a hop reads one dual link
    }

    #[inline]
    fn smem_bytes(&mut self, bytes: u64) {
        self.warp.smem_bytes += bytes;
    }

    #[inline]
    fn combiner_hits(&mut self, n: u64) {
        self.warp.combiner_hits += n;
    }

    #[inline]
    fn combiner_flushes(&mut self, n: u64) {
        self.warp.combiner_flushes += n;
    }

    #[inline]
    fn combiner_overflows(&mut self, n: u64) {
        self.warp.combiner_overflows += n;
    }

    #[inline]
    fn head_cas_retries(&mut self, n: u64) {
        self.warp.head_cas_retries += n;
    }

    #[inline]
    fn access(&mut self, addr: ShadowAddr, kind: AccessKind) {
        if let Some(log) = self.warp.shadow.as_mut() {
            log.push(ShadowEvent {
                addr,
                kind,
                warp: self.warp.warp_index,
                lane: WARP_LEVEL_LANE,
            });
        }
    }
}

impl LaneCtx<'_> {
    /// Global task index of this lane.
    #[inline]
    pub fn task(&self) -> usize {
        self.task
    }

    /// Charge `units` of scalar compute work.
    #[inline]
    pub fn charge_compute(&mut self, units: u64) {
        self.warp.compute_units += units;
    }

    /// Record `bytes` of coalesced streaming reads (input records).
    #[inline]
    pub fn read_stream(&mut self, bytes: u64) {
        self.warp.stream_bytes += bytes;
    }

    /// Record `bytes` of irregular device-memory traffic.
    #[inline]
    pub fn touch_device(&mut self, bytes: u64) {
        self.warp.device_bytes += bytes;
    }

    /// Declare the branch class this lane took at a divergent branch.
    /// Distinct classes within one warp serialize.
    #[inline]
    pub fn branch_class(&mut self, class: u32) {
        self.warp.branch_classes.insert(class);
    }

    /// Split this lane into its warp-scratch state (when the launch was
    /// [`Executor::launch_scoped`] with a [`WarpScratch`]) and a charge
    /// sink over the warp tally. The split borrows disjoint fields, so a
    /// lane can update scratch state while charging costs.
    #[inline]
    pub fn scratch_parts(&mut self) -> (Option<&mut (dyn Any + Send)>, WarpCharge<'_>) {
        (self.scratch.as_deref_mut(), WarpCharge { warp: self.warp })
    }
}

impl crate::charge::Charge for LaneCtx<'_> {
    #[inline]
    fn compute(&mut self, units: u64) {
        self.charge_compute(units);
    }

    #[inline]
    fn device_bytes(&mut self, bytes: u64) {
        self.touch_device(bytes);
    }

    #[inline]
    fn chain_hops(&mut self, hops: u64) {
        self.warp.chain_hops += hops;
        self.warp.device_bytes += hops * 16; // a hop reads one dual link
    }

    #[inline]
    fn smem_bytes(&mut self, bytes: u64) {
        self.warp.smem_bytes += bytes;
    }

    #[inline]
    fn combiner_hits(&mut self, n: u64) {
        self.warp.combiner_hits += n;
    }

    #[inline]
    fn combiner_flushes(&mut self, n: u64) {
        self.warp.combiner_flushes += n;
    }

    #[inline]
    fn combiner_overflows(&mut self, n: u64) {
        self.warp.combiner_overflows += n;
    }

    #[inline]
    fn head_cas_retries(&mut self, n: u64) {
        self.warp.head_cas_retries += n;
    }

    #[inline]
    fn access(&mut self, addr: ShadowAddr, kind: AccessKind) {
        if let Some(log) = self.warp.shadow.as_mut() {
            log.push(ShadowEvent {
                addr,
                kind,
                warp: self.warp.warp_index,
                lane: (self.task % WARP_SIZE) as u32,
            });
        }
    }
}

/// Statistics returned by a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchStats {
    /// Tasks executed by this launch.
    pub tasks: u64,
    /// Warps the tasks were grouped into.
    pub warps: u64,
    /// Divergence events recorded by this launch.
    pub divergence_events: u64,
    /// Lanes whose task was skipped by an injected fault (the task's work
    /// never ran; the caller sees it as still unprocessed).
    pub lanes_aborted: u64,
}

/// Why a launch failed.
enum LaunchFailure {
    /// A kernel lane panicked; carries the first panic payload. The launch
    /// still drained (every remaining warp ran) and the pool is unaffected.
    Panic(Box<dyn Any + Send + 'static>),
    /// A hard fault ([`HardFaultError`]) killed the launch before it
    /// started: no lane ran, no state was touched, no metrics were charged.
    Hard(HardFaultError),
}

/// A launch failed: either a kernel panicked mid-launch, or a hard device
/// fault killed the launch before it started (see
/// [`LaunchError::hard_fault`]).
pub struct LaunchError {
    failure: LaunchFailure,
}

impl LaunchError {
    fn panic(payload: Box<dyn Any + Send + 'static>) -> Self {
        LaunchError {
            failure: LaunchFailure::Panic(payload),
        }
    }

    fn hard(fault: HardFaultError) -> Self {
        LaunchError {
            failure: LaunchFailure::Hard(fault),
        }
    }

    /// Best-effort view of the failure message.
    pub fn message(&self) -> &str {
        match &self.failure {
            LaunchFailure::Panic(payload) => {
                if let Some(s) = payload.downcast_ref::<&str>() {
                    s
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s
                } else {
                    "kernel panicked with a non-string payload"
                }
            }
            LaunchFailure::Hard(fault) => fault.kind.label(),
        }
    }

    /// The hard fault that killed this launch, when the failure was a hard
    /// fault rather than a kernel panic. A hard-faulted launch never ran:
    /// callers holding a checkpoint can rebuild device state and retry.
    pub fn hard_fault(&self) -> Option<HardFaultError> {
        match &self.failure {
            LaunchFailure::Hard(fault) => Some(*fault),
            LaunchFailure::Panic(_) => None,
        }
    }

    /// A payload for re-raising: the original panic payload, or for hard
    /// faults a descriptive message (hard faults should normally be handled
    /// through [`LaunchError::hard_fault`] instead of re-raised).
    pub fn into_panic(self) -> Box<dyn Any + Send + 'static> {
        match self.failure {
            LaunchFailure::Panic(payload) => payload,
            LaunchFailure::Hard(fault) => Box::new(format!("unrecovered hard fault: {fault}")),
        }
    }
}

impl fmt::Debug for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            LaunchFailure::Panic(_) => write!(f, "LaunchError(panic: {:?})", self.message()),
            LaunchFailure::Hard(fault) => write!(f, "LaunchError(hard: {fault})"),
        }
    }
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.failure {
            LaunchFailure::Panic(_) => write!(f, "kernel panicked: {}", self.message()),
            LaunchFailure::Hard(fault) => write!(f, "hard device fault: {fault}"),
        }
    }
}

impl std::error::Error for LaunchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.failure {
            LaunchFailure::Hard(fault) => Some(fault),
            LaunchFailure::Panic(_) => None,
        }
    }
}

/// Per-participant event accumulator: one per pool slot, written without
/// synchronization, flushed to [`Metrics`] once per launch.
#[derive(Debug, Default)]
struct Shard {
    compute_units: u64,
    stream_bytes: u64,
    device_bytes: u64,
    chain_hops: u64,
    smem_bytes: u64,
    combiner_hits: u64,
    combiner_flushes: u64,
    combiner_overflows: u64,
    head_cas_retries: u64,
    divergence_events: u64,
    lanes_aborted: u64,
    /// Declared shadow accesses, in this shard's warp-retirement order.
    shadow: Vec<ShadowEvent>,
}

impl Shard {
    fn absorb(&mut self, other: Shard) {
        self.compute_units += other.compute_units;
        self.stream_bytes += other.stream_bytes;
        self.device_bytes += other.device_bytes;
        self.chain_hops += other.chain_hops;
        self.smem_bytes += other.smem_bytes;
        self.combiner_hits += other.combiner_hits;
        self.combiner_flushes += other.combiner_flushes;
        self.combiner_overflows += other.combiner_overflows;
        self.head_cas_retries += other.head_cas_retries;
        self.divergence_events += other.divergence_events;
        self.lanes_aborted += other.lanes_aborted;
        self.shadow.extend(other.shadow);
    }
}

/// Pool job for one launch: warps are the units; each participant owns the
/// shard indexed by its slot.
struct KernelJob<'k, K> {
    kernel: &'k K,
    n_tasks: usize,
    faults: Option<&'k FaultPlan>,
    scratch: Option<&'k WarpScratch<'k>>,
    /// Buffer declared shadow accesses for a sanitizer at retirement.
    shadow_on: bool,
    shards: Vec<UnsafeCell<Shard>>,
}

// Soundness: the pool hands each participant a distinct slot, and a shard
// is only touched through its owner's slot index, so `UnsafeCell` access
// is exclusive. The pool's completion latch orders all shard writes before
// the submitter reads them back.
unsafe impl<K: Sync> Sync for KernelJob<'_, K> {}

impl<K: Fn(&mut LaneCtx<'_>) + Sync> Work for KernelJob<'_, K> {
    fn run_units(&self, warps: Range<usize>, slot: usize) {
        // lint: shard-ok (worker-local scratch slot inside one device)
        let shard = unsafe { &mut *self.shards[slot].get() };
        for warp in warps {
            run_warp(
                self.kernel,
                warp,
                self.n_tasks,
                self.faults,
                self.scratch,
                self.shadow_on,
                shard,
            );
        }
    }
}

/// Execute one warp's lanes serially, folding its tally into `shard`.
/// Lanes killed by the fault plan skip their kernel invocation — the task
/// runs nothing and stays unprocessed from the caller's point of view.
/// When `scratch` hooks are attached, warp scratch state is created before
/// the first lane and drained (`finish`) at warp retirement, before the
/// tally is folded — so every scratch effect lands before the launch
/// returns.
fn run_warp<K>(
    kernel: &K,
    warp: usize,
    n_tasks: usize,
    faults: Option<&FaultPlan>,
    scratch: Option<&WarpScratch<'_>>,
    shadow_on: bool,
    shard: &mut Shard,
) where
    K: Fn(&mut LaneCtx<'_>) + Sync,
{
    let mut local = WarpLocal {
        warp_index: warp as u32,
        shadow: shadow_on.then(Vec::new),
        ..WarpLocal::default()
    };
    let mut scratch_state = scratch.map(|s| (s.init)());
    let start = warp * WARP_SIZE;
    let end = (start + WARP_SIZE).min(n_tasks);
    for task in start..end {
        if let Some(plan) = faults {
            if plan.should_fault(FaultSite::Lane) {
                shard.lanes_aborted += 1;
                continue;
            }
        }
        let mut ctx = LaneCtx {
            task,
            warp: &mut local,
            scratch: scratch_state.as_deref_mut(),
        };
        kernel(&mut ctx);
    }
    if let (Some(hooks), Some(state)) = (scratch, scratch_state.as_mut()) {
        let mut charge = WarpCharge { warp: &mut local };
        (hooks.finish)(&mut **state, &mut charge);
    }
    shard.compute_units += local.compute_units;
    shard.stream_bytes += local.stream_bytes;
    shard.device_bytes += local.device_bytes;
    shard.chain_hops += local.chain_hops;
    shard.smem_bytes += local.smem_bytes;
    shard.combiner_hits += local.combiner_hits;
    shard.combiner_flushes += local.combiner_flushes;
    shard.combiner_overflows += local.combiner_overflows;
    shard.head_cas_retries += local.head_cas_retries;
    shard.divergence_events += (local.branch_classes.len() as u64).saturating_sub(1);
    if let Some(log) = local.shadow {
        shard.shadow.extend(log);
    }
}

/// The kernel executor. Cheap to clone; clones share the metrics sink (and
/// the fault plan, when one is attached).
#[derive(Debug, Clone)]
pub struct Executor {
    mode: ExecMode,
    metrics: Arc<Metrics>,
    faults: Option<Arc<FaultPlan>>,
    shadow: Option<Arc<ShadowSanitizer>>,
}

impl Executor {
    pub fn new(mode: ExecMode, metrics: Arc<Metrics>) -> Self {
        Executor {
            mode,
            metrics,
            faults: None,
            shadow: None,
        }
    }

    /// Attach a fault plan: lanes may abort before running their task
    /// (counted in [`LaunchStats::lanes_aborted`]). Under the deterministic
    /// modes the abort pattern is a pure function of the plan's seed.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attach a shadow-memory sanitizer: every access the kernel declares
    /// through [`crate::charge::Charge::access`] is buffered warp-locally
    /// and merged into the sanitizer (in shard slot order) when the launch
    /// retires. Declared accesses charge no simulated cost, so attaching a
    /// sanitizer never changes results or metrics.
    pub fn with_shadow(mut self, sanitizer: Arc<ShadowSanitizer>) -> Self {
        self.shadow = Some(sanitizer);
        self
    }

    /// The shadow sanitizer in force, if any.
    pub fn shadow(&self) -> Option<&Arc<ShadowSanitizer>> {
        self.shadow.as_ref()
    }

    /// The fault plan in force, if any.
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The metrics sink launches report into.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Execution mode in force.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Launch `kernel` over `n_tasks` tasks. Blocks until all warps retire.
    /// A kernel panic is re-raised on the calling thread (the launch drains
    /// first; see [`Executor::try_launch`]).
    ///
    /// The kernel runs once per task and may freely share `Sync` state
    /// (hash table, allocator, bitmap) across lanes.
    pub fn launch<K>(&self, n_tasks: usize, kernel: K) -> LaunchStats
    where
        K: Fn(&mut LaneCtx<'_>) + Sync,
    {
        self.try_launch(n_tasks, kernel)
            .unwrap_or_else(|e| std::panic::resume_unwind(e.into_panic()))
    }

    /// Like [`Executor::launch`], with per-warp scratch hooks attached: each
    /// warp gets its own scratch state (`scratch.init`) which its lanes can
    /// reach via [`LaneCtx::scratch_parts`], drained by `scratch.finish`
    /// when the warp retires — strictly before this call returns.
    pub fn launch_scoped<K>(
        &self,
        n_tasks: usize,
        scratch: Option<&WarpScratch<'_>>,
        kernel: K,
    ) -> LaunchStats
    where
        K: Fn(&mut LaneCtx<'_>) + Sync,
    {
        self.try_launch_scoped(n_tasks, scratch, kernel)
            .unwrap_or_else(|e| std::panic::resume_unwind(e.into_panic()))
    }

    /// Like [`Executor::launch`], but a kernel panic is returned as a
    /// [`LaunchError`] instead of unwinding. The launch always drains:
    /// every warp not in the panicking chunk still executes, and the worker
    /// pool remains fully usable.
    pub fn try_launch<K>(&self, n_tasks: usize, kernel: K) -> Result<LaunchStats, LaunchError>
    where
        K: Fn(&mut LaneCtx<'_>) + Sync,
    {
        self.try_launch_scoped(n_tasks, None, kernel)
    }

    /// [`Executor::launch_scoped`] with the panic-capturing contract of
    /// [`Executor::try_launch`].
    pub fn try_launch_scoped<K>(
        &self,
        n_tasks: usize,
        scratch: Option<&WarpScratch<'_>>,
        kernel: K,
    ) -> Result<LaunchStats, LaunchError>
    where
        K: Fn(&mut LaneCtx<'_>) + Sync,
    {
        if n_tasks == 0 {
            return Ok(LaunchStats {
                tasks: 0,
                warps: 0,
                divergence_events: 0,
                lanes_aborted: 0,
            });
        }
        // Hard faults strike before the launch starts: a killed launch runs
        // no lane, charges no metrics, and touches no shared state, so the
        // caller's last iteration-boundary checkpoint is still exact.
        if let Some(plan) = self.faults.as_deref() {
            if let Some(fault) = plan.draw_hard() {
                return Err(LaunchError::hard(fault));
            }
        }
        let n_warps = n_tasks.div_ceil(WARP_SIZE);
        let (max_slots, chunk) = match self.mode {
            ExecMode::Deterministic | ExecMode::ParallelDeterministic => (1, n_warps),
            ExecMode::Parallel { workers } => {
                let pool = WorkerPool::global();
                let cap = if workers == 0 {
                    pool.max_participants()
                } else {
                    workers.clamp(1, pool.max_participants())
                };
                // Adaptive chunking: ~8 claims per participant amortizes
                // the claim cursor without starving the tail of the launch.
                (cap, (n_warps / (cap * 8)).max(1))
            }
        };
        let job = KernelJob {
            kernel: &kernel,
            n_tasks,
            faults: self.faults.as_deref(),
            scratch,
            shadow_on: self.shadow.is_some(),
            shards: (0..max_slots)
                .map(|_| UnsafeCell::new(Shard::default()))
                .collect(),
        };
        let outcome = pool::WorkerPool::global().run(n_warps, chunk, max_slots, &job);

        // Flush whatever completed warps recorded — also on panic, so a
        // failed launch still accounts the work it did.
        let mut total = Shard::default();
        for cell in job.shards {
            total.absorb(cell.into_inner());
        }
        if let Some(sanitizer) = &self.shadow {
            sanitizer.ingest(std::mem::take(&mut total.shadow));
        }
        self.metrics.add_compute_units(total.compute_units);
        self.metrics.add_stream_bytes(total.stream_bytes);
        self.metrics.add_device_bytes(total.device_bytes);
        self.metrics.add_chain_hops(total.chain_hops);
        self.metrics.add_smem_bytes(total.smem_bytes);
        self.metrics.add_combiner_hits(total.combiner_hits);
        self.metrics.add_combiner_flushes(total.combiner_flushes);
        self.metrics
            .add_combiner_overflows(total.combiner_overflows);
        self.metrics.add_head_cas_retries(total.head_cas_retries);
        self.metrics.add_divergence_events(total.divergence_events);

        outcome.map_err(LaunchError::panic)?;
        // Aborted lanes never ran their task; only executed tasks count.
        let executed = n_tasks as u64 - total.lanes_aborted;
        self.metrics.add_tasks(executed);
        Ok(LaunchStats {
            tasks: executed,
            warps: n_warps as u64,
            divergence_events: total.divergence_events,
            lanes_aborted: total.lanes_aborted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn exec(mode: ExecMode) -> (Executor, Arc<Metrics>) {
        let m = Arc::new(Metrics::new());
        (Executor::new(mode, Arc::clone(&m)), m)
    }

    #[test]
    fn every_task_runs_exactly_once_parallel() {
        let (e, _) = exec(ExecMode::Parallel { workers: 4 });
        let n = 1_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        e.launch(n, |ctx| {
            hits[ctx.task()].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn every_task_runs_exactly_once_deterministic() {
        let (e, _) = exec(ExecMode::Deterministic);
        let n = 97; // not a multiple of warp size
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let stats = e.launch(n, |ctx| {
            hits[ctx.task()].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.tasks, 97);
        assert_eq!(stats.warps, 4); // ceil(97/32)
    }

    #[test]
    fn deterministic_mode_runs_in_task_order() {
        let (e, _) = exec(ExecMode::Deterministic);
        let order = parking_lot::Mutex::new(Vec::new());
        e.launch(100, |ctx| {
            order.lock().push(ctx.task());
        });
        let order = order.into_inner();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_deterministic_runs_in_task_order() {
        let (e, _) = exec(ExecMode::ParallelDeterministic);
        let order = parking_lot::Mutex::new(Vec::new());
        e.launch(100, |ctx| {
            order.lock().push(ctx.task());
        });
        let order = order.into_inner();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn charges_flow_into_metrics() {
        let (e, m) = exec(ExecMode::Deterministic);
        e.launch(10, |ctx| {
            ctx.charge_compute(5);
            ctx.read_stream(100);
            ctx.touch_device(8);
        });
        let s = m.snapshot();
        assert_eq!(s.tasks, 10);
        assert_eq!(s.compute_units, 50);
        assert_eq!(s.stream_bytes, 1_000);
        assert_eq!(s.device_bytes, 80);
    }

    #[test]
    fn uniform_branch_class_causes_no_divergence() {
        let (e, m) = exec(ExecMode::Deterministic);
        let stats = e.launch(64, |ctx| ctx.branch_class(7));
        assert_eq!(stats.divergence_events, 0);
        assert_eq!(m.snapshot().divergence_events, 0);
    }

    #[test]
    fn divergence_counts_extra_classes_per_warp() {
        let (e, m) = exec(ExecMode::Deterministic);
        // Lanes alternate between 4 classes: each full warp sees 4 distinct
        // classes => 3 events per warp; 2 warps => 6.
        let stats = e.launch(64, |ctx| ctx.branch_class((ctx.task() % 4) as u32));
        assert_eq!(stats.divergence_events, 6);
        assert_eq!(m.snapshot().divergence_events, 6);
    }

    #[test]
    fn divergence_respects_warp_boundaries() {
        let (e, _) = exec(ExecMode::Deterministic);
        // Class = warp index: uniform within each warp => no divergence.
        let stats = e.launch(320, |ctx| ctx.branch_class((ctx.task() / WARP_SIZE) as u32));
        assert_eq!(stats.divergence_events, 0);
    }

    #[test]
    fn empty_launch_is_a_noop() {
        let (e, m) = exec(ExecMode::Parallel { workers: 4 });
        let stats = e.launch(0, |_| panic!("kernel must not run"));
        assert_eq!(stats.tasks, 0);
        assert_eq!(m.snapshot().tasks, 0);
    }

    #[test]
    fn parallel_and_deterministic_agree_on_aggregates() {
        let run = |mode| {
            let (e, m) = exec(mode);
            e.launch(10_000, |ctx| {
                ctx.charge_compute((ctx.task() % 7) as u64);
                ctx.branch_class((ctx.task() % 3) as u32);
            });
            m.snapshot()
        };
        let par = run(ExecMode::Parallel { workers: 8 });
        let det = run(ExecMode::Deterministic);
        assert_eq!(par.compute_units, det.compute_units);
        assert_eq!(par.divergence_events, det.divergence_events);
        assert_eq!(par.tasks, det.tasks);
    }

    #[test]
    fn parallel_deterministic_snapshots_are_byte_identical() {
        let run = |mode| {
            let (e, m) = exec(mode);
            for round in 0..5 {
                e.launch(3_000 + round * 7, |ctx| {
                    ctx.charge_compute((ctx.task() % 11) as u64);
                    ctx.read_stream(24);
                    ctx.touch_device((ctx.task() % 3) as u64 * 16);
                    ctx.branch_class((ctx.task() % 2) as u32);
                });
            }
            m.snapshot()
        };
        assert_eq!(
            run(ExecMode::Deterministic),
            run(ExecMode::ParallelDeterministic)
        );
    }

    #[test]
    fn try_launch_reports_kernel_panic_and_executor_survives() {
        let (e, m) = exec(ExecMode::Parallel { workers: 4 });
        let err = e
            .try_launch(1_000, |ctx| {
                if ctx.task() == 517 {
                    panic!("lane 517 died");
                }
                ctx.charge_compute(1);
            })
            .unwrap_err();
        assert_eq!(err.message(), "lane 517 died");
        // `tasks` is only credited on success.
        assert_eq!(m.snapshot().tasks, 0);
        // The executor (and the shared pool behind it) keeps working.
        let stats = e.launch(1_000, |ctx| ctx.charge_compute(1));
        assert_eq!(stats.tasks, 1_000);
        assert_eq!(m.snapshot().tasks, 1_000);
    }

    #[test]
    fn launch_unwinds_with_original_payload() {
        let (e, _) = exec(ExecMode::Deterministic);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.launch(10, |_| panic!("boom-{}", 42));
        }))
        .unwrap_err();
        // The payload type depends on how rustc lowers the format string
        // (`&'static str` when const-foldable, `String` otherwise) — accept
        // either, but the text must be the kernel's own.
        let text = caught
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| caught.downcast_ref::<String>().map(String::as_str));
        assert_eq!(text, Some("boom-42"));
    }

    #[test]
    fn lane_aborts_skip_tasks_deterministically() {
        use crate::faults::{FaultConfig, FaultPlan};
        let run = |seed| {
            let m = Arc::new(Metrics::new());
            let plan = Arc::new(FaultPlan::new(FaultConfig {
                seed,
                alloc_failure_rate: 0.0,
                pcie_error_rate: 0.0,
                lane_abort_rate: 0.2,
            }));
            let e = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&m))
                .with_faults(Arc::clone(&plan));
            let n = 4_000;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let stats = e.launch(n, |ctx| {
                hits[ctx.task()].fetch_add(1, Ordering::Relaxed);
            });
            let ran: Vec<usize> = hits
                .iter()
                .enumerate()
                .filter(|(_, h)| h.load(Ordering::Relaxed) == 1)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(stats.tasks as usize, ran.len());
            assert_eq!(stats.lanes_aborted as usize, n - ran.len());
            assert!(stats.lanes_aborted > 0, "20% abort rate must fire");
            // Only executed tasks reach the metrics sink.
            assert_eq!(m.snapshot().tasks, stats.tasks);
            ran
        };
        // Same seed => identical abort pattern; different seed => different.
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn hard_fault_kills_the_launch_before_anything_runs() {
        use crate::faults::{FaultConfig, FaultPlan, HardFaultConfig, HardFaultKind};
        let m = Arc::new(Metrics::new());
        let plan = Arc::new(
            FaultPlan::new(FaultConfig::quiet(1)).with_hard(HardFaultConfig {
                seed: 3,
                device_loss_rate: 1.0,
                poisoned_launch_rate: 0.0,
            }),
        );
        let e =
            Executor::new(ExecMode::Deterministic, Arc::clone(&m)).with_faults(Arc::clone(&plan));
        let ran = AtomicU64::new(0);
        let err = e
            .try_launch(100, |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        let fault = err.hard_fault().expect("must be a hard fault");
        assert_eq!(fault.kind, HardFaultKind::DeviceLost);
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no lane may run");
        assert_eq!(m.snapshot(), crate::metrics::Snapshot::default());
        assert_eq!(plan.hard_injected(HardFaultKind::DeviceLost), 1);
    }

    #[test]
    fn kernel_panics_are_not_hard_faults() {
        let (e, _) = exec(ExecMode::Deterministic);
        let err = e.try_launch(10, |_| panic!("plain panic")).unwrap_err();
        assert!(err.hard_fault().is_none());
        assert_eq!(err.message(), "plain panic");
    }

    #[test]
    fn no_fault_plan_means_no_aborts() {
        let (e, _) = exec(ExecMode::Deterministic);
        let stats = e.launch(100, |_| {});
        assert_eq!(stats.lanes_aborted, 0);
        assert_eq!(stats.tasks, 100);
    }

    #[test]
    fn warp_scratch_init_and_finish_run_once_per_warp() {
        use crate::charge::Charge;
        let (e, m) = exec(ExecMode::Deterministic);
        let inits = AtomicU64::new(0);
        let finishes = AtomicU64::new(0);
        let init = || -> Box<dyn Any + Send> {
            inits.fetch_add(1, Ordering::Relaxed);
            Box::new(0u64)
        };
        let finish = |state: &mut (dyn Any + Send), charge: &mut dyn Charge| {
            finishes.fetch_add(1, Ordering::Relaxed);
            let lanes = *state.downcast_ref::<u64>().unwrap();
            // Drain the warp's accumulated lane count as flushes.
            charge.combiner_flushes(lanes);
        };
        let hooks = WarpScratch {
            init: &init,
            finish: &finish,
        };
        let n = 100; // 4 warps (ceil 100/32)
        let stats = e.launch_scoped(n, Some(&hooks), |ctx| {
            let (scratch, mut charge) = ctx.scratch_parts();
            let counter = scratch.unwrap().downcast_mut::<u64>().unwrap();
            *counter += 1;
            charge.combiner_hits(1);
            charge.smem_bytes(8);
        });
        assert_eq!(stats.tasks, 100);
        assert_eq!(inits.load(Ordering::Relaxed), 4);
        assert_eq!(finishes.load(Ordering::Relaxed), 4);
        let s = m.snapshot();
        assert_eq!(s.combiner_hits, 100);
        assert_eq!(s.smem_bytes, 800);
        // finish saw every lane of its own warp, and its charges landed
        // in the same launch's flush.
        assert_eq!(s.combiner_flushes, 100);
    }

    #[test]
    fn plain_launch_has_no_scratch() {
        let (e, _) = exec(ExecMode::Deterministic);
        e.launch(10, |ctx| {
            let (scratch, _) = ctx.scratch_parts();
            assert!(scratch.is_none());
        });
    }

    #[test]
    fn divergence_is_tracked_in_u64_at_scale() {
        // Many warps, each with one divergence event: totals flow through
        // u64 shards end to end (no usize round-trip).
        let (e, m) = exec(ExecMode::Parallel { workers: 0 });
        let stats = e.launch(WARP_SIZE * 4_096, |ctx| {
            ctx.branch_class((ctx.task() % 2) as u32)
        });
        assert_eq!(stats.divergence_events, 4_096);
        assert_eq!(m.snapshot().divergence_events, 4_096);
    }
}
