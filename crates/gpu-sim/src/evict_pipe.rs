//! Double-buffered asynchronous eviction pipe.
//!
//! Input staging ([`crate::staging`]) already overlaps host→device uploads
//! with compute; eviction is the same pipeline run in the device→host
//! direction. At an iteration boundary the driver packs each evicted page
//! into one of a pair of eviction staging buffers and hands it to the DMA
//! engine; the transfer then drains *behind the next iteration's kernels*,
//! and the host heap adopts the page only once the transfer has completed
//! in simulated time. The makespan effect is the mirror image of
//! BigKernel's upload pipeline and is priced with the same
//! [`crate::pipeline::pipelined_total`] model.
//!
//! The pipe is generic over the payload it carries: the simulator layer
//! tracks reservations, bytes, and completion times, while the caller
//! (the SEPO driver) attaches whatever it needs to re-home a page —
//! typically an `Arc`-shared page image, making deferred adoption
//! copy-free.

use crate::clock::{SimClock, SimTime};
use crate::memory::{DeviceMemory, OutOfDeviceMemory, Reservation};
use crate::pcie::PcieBus;
use std::collections::VecDeque;

/// A pair of device-side eviction staging buffers plus the in-flight
/// payloads whose DMA has been issued on the bus ledger but has not yet
/// completed. See the module docs for the schedule it models.
#[derive(Debug)]
pub struct EvictionPipe<T> {
    /// Capacity of one staging buffer in bytes.
    capacity: usize,
    /// Which buffer the *next* enqueue packs into; the other one is being
    /// drained by the DMA engine.
    front: usize,
    /// Simulated clock the completion model runs against. Advanced by the
    /// driver as compute elapses; `quiesce` fast-forwards it to the bus's
    /// idle point.
    clock: SimClock,
    /// Issued-but-not-adopted payloads keyed by their bus transfer id, in
    /// issue (= completion) order.
    in_flight: VecDeque<(u64, u64, T)>,
    /// Payloads enqueued over the pipe's lifetime.
    enqueued: u64,
    /// Total DMA time of every issued transfer (failed attempts included).
    transfer_time: SimTime,
    /// Time `quiesce` spent waiting for the engine — the exposed (not
    /// hidden behind compute) portion of the eviction DMA.
    exposed_wait: SimTime,
    bus: PcieBus,
    device: DeviceMemory,
    reservations: [Option<Reservation>; 2],
}

impl<T> EvictionPipe<T> {
    /// Reserve two `buffer_capacity`-byte eviction staging buffers from
    /// `device`; transfers are issued on `bus`'s in-flight ledger. Like
    /// [`crate::staging::StagingBuffers::new`], a failed second reservation
    /// rolls back the first.
    pub fn new(
        device: &DeviceMemory,
        bus: PcieBus,
        buffer_capacity: usize,
    ) -> Result<Self, OutOfDeviceMemory> {
        let a = device.reserve("eviction staging A", buffer_capacity as u64)?;
        let b = match device.reserve("eviction staging B", buffer_capacity as u64) {
            Ok(b) => b,
            Err(e) => {
                device.release(a);
                return Err(e);
            }
        };
        Ok(EvictionPipe {
            capacity: buffer_capacity,
            front: 0,
            clock: SimClock::new(),
            in_flight: VecDeque::new(),
            enqueued: 0,
            transfer_time: SimTime::ZERO,
            exposed_wait: SimTime::ZERO,
            bus,
            device: device.clone(),
            reservations: [Some(a), Some(b)],
        })
    }

    /// Return both staging reservations to the device (idempotent;
    /// dropping does the same).
    pub fn release(&mut self) {
        for slot in &mut self.reservations {
            if let Some(r) = slot.take() {
                self.device.release(r);
            }
        }
    }

    /// Capacity of one staging buffer.
    pub fn buffer_capacity(&self) -> usize {
        self.capacity
    }

    /// Pack `bytes` of evicted page data into the back staging buffer and
    /// issue its DMA on the bus ledger at the pipe's current simulated
    /// time. A payload larger than one buffer is split at capacity
    /// boundaries into back-to-back transfers (alternating buffers); the
    /// payload completes with its last piece. Returns the completion time.
    pub fn enqueue(&mut self, payload: T, bytes: u64) -> SimTime {
        let cap = self.capacity.max(1) as u64;
        let mut left = bytes;
        let last = loop {
            let piece = left.min(cap);
            let ticket = self.bus.begin_transfer(piece, self.clock.now());
            self.transfer_time += self.bus.bulk_transfer_time(piece);
            self.front = 1 - self.front;
            if left <= cap {
                break ticket;
            }
            left -= cap;
        };
        self.in_flight.push_back((last.id, bytes, payload));
        self.enqueued += 1;
        last.completion
    }

    /// Current simulated time of the pipe's completion model.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advance the completion clock by `dt` (compute elapsing on the
    /// device while the DMA drains) and return the new time.
    pub fn advance(&mut self, dt: SimTime) -> SimTime {
        self.clock.advance(dt)
    }

    /// Collect every payload whose DMA has completed by simulated time
    /// `t`, in completion order. Payloads still on the wire stay queued.
    pub fn drain_until(&mut self, t: SimTime) -> Vec<T> {
        let done = self.bus.drain_until(t);
        let mut out = Vec::new();
        for c in done {
            // Intermediate pieces of a split payload have no entry of
            // their own; the payload rides its final piece.
            if self.in_flight.front().is_some_and(|(id, _, _)| *id == c.id) {
                let (_, _, payload) = self.in_flight.pop_front().expect("checked front");
                out.push(payload);
            }
        }
        out
    }

    /// Wait (in simulated time) for the DMA engine to go idle and adopt
    /// everything still in flight: fast-forwards the clock to the bus's
    /// busy horizon, accumulating the gap as exposed wait time, and
    /// returns the remaining payloads in completion order.
    pub fn quiesce(&mut self) -> Vec<T> {
        let horizon = self.bus.busy_until();
        let now = self.clock.now();
        if horizon > now {
            self.exposed_wait += horizon - now;
            self.clock.advance(horizon - now);
        }
        self.drain_until(self.clock.now())
    }

    /// Payloads issued but not yet adopted.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Bytes across issued-but-not-adopted payloads.
    pub fn in_flight_bytes(&self) -> u64 {
        self.in_flight.iter().map(|(_, b, _)| b).sum()
    }

    /// Payloads enqueued over the pipe's lifetime.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total DMA time of every issued transfer.
    pub fn transfer_time(&self) -> SimTime {
        self.transfer_time
    }

    /// Simulated time `quiesce` spent stalled on the engine — the portion
    /// of the eviction DMA that compute did not hide.
    pub fn exposed_wait(&self) -> SimTime {
        self.exposed_wait
    }
}

impl<T> Drop for EvictionPipe<T> {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::spec::PcieSpec;
    use std::sync::Arc;

    fn bus() -> PcieBus {
        PcieBus::new(PcieSpec::default(), Arc::new(Metrics::new()))
    }

    fn pipe(dev: &DeviceMemory, cap: usize) -> EvictionPipe<u32> {
        EvictionPipe::new(dev, bus(), cap).unwrap()
    }

    #[test]
    fn reserves_and_releases_two_buffers() {
        let dev = DeviceMemory::new(10_000);
        {
            let p = pipe(&dev, 3_000);
            assert_eq!(dev.used(), 6_000);
            assert_eq!(p.buffer_capacity(), 3_000);
        }
        assert_eq!(dev.free(), 10_000, "drop must return the capacity");
        dev.verify_ledger().unwrap();
    }

    #[test]
    fn failed_second_reservation_rolls_back_the_first() {
        let dev = DeviceMemory::new(5_000);
        assert!(EvictionPipe::<u32>::new(&dev, bus(), 3_000).is_err());
        assert_eq!(dev.free(), 5_000);
    }

    #[test]
    fn payloads_drain_in_completion_order() {
        let dev = DeviceMemory::new(1 << 20);
        let mut p = pipe(&dev, 4_096);
        let c1 = p.enqueue(1, 1_000);
        let c2 = p.enqueue(2, 1_000);
        assert!(c2 > c1, "one DMA engine: completions are serialized");
        assert_eq!(p.in_flight(), 2);
        assert_eq!(p.in_flight_bytes(), 2_000);
        assert!(p.drain_until(SimTime::ZERO).is_empty());
        assert_eq!(p.drain_until(c1), vec![1]);
        assert_eq!(p.in_flight(), 1);
        assert_eq!(p.drain_until(c2), vec![2]);
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn advancing_past_completions_makes_them_ready() {
        let dev = DeviceMemory::new(1 << 20);
        let mut p = pipe(&dev, 4_096);
        let done = p.enqueue(7, 2_048);
        p.advance(done);
        assert_eq!(p.drain_until(p.now()), vec![7]);
    }

    #[test]
    fn quiesce_adopts_everything_and_records_exposed_wait() {
        let dev = DeviceMemory::new(1 << 20);
        let mut p = pipe(&dev, 4_096);
        p.enqueue(1, 4_096);
        p.enqueue(2, 4_096);
        assert_eq!(p.quiesce(), vec![1, 2]);
        assert_eq!(p.in_flight(), 0);
        // Nothing overlapped the DMA, so the whole drain was exposed.
        assert!(p.exposed_wait() > SimTime::ZERO);
        assert_eq!(p.now(), p.exposed_wait());
        // Idempotent once empty.
        assert!(p.quiesce().is_empty());
    }

    #[test]
    fn compute_overlap_hides_the_dma() {
        let dev = DeviceMemory::new(1 << 20);
        let mut p = pipe(&dev, 4_096);
        let done = p.enqueue(9, 4_096);
        // An iteration of compute longer than the transfer elapses.
        p.advance(done + SimTime::from_millis(1));
        assert_eq!(p.quiesce(), vec![9]);
        assert_eq!(p.exposed_wait(), SimTime::ZERO, "fully hidden DMA");
    }

    #[test]
    fn oversized_payload_splits_at_capacity_boundaries() {
        let dev = DeviceMemory::new(1 << 20);
        let m = Arc::new(Metrics::new());
        let b = PcieBus::new(PcieSpec::default(), Arc::clone(&m));
        let mut p: EvictionPipe<u32> = EvictionPipe::new(&dev, b.clone(), 1_000).unwrap();
        p.enqueue(1, 2_500); // 3 pieces: 1000 + 1000 + 500
        assert_eq!(m.snapshot().pcie_bulk_transfers, 3);
        assert_eq!(m.snapshot().pcie_bulk_bytes, 2_500);
        assert_eq!(p.in_flight(), 1, "split pieces carry one payload");
        assert_eq!(p.quiesce(), vec![1]);
    }

    #[test]
    fn enqueued_and_transfer_time_accumulate() {
        let dev = DeviceMemory::new(1 << 20);
        let mut p = pipe(&dev, 4_096);
        p.enqueue(1, 1_024);
        p.enqueue(2, 1_024);
        assert_eq!(p.enqueued(), 2);
        assert!(p.transfer_time() > SimTime::ZERO);
    }
}
