//! # gpu-sim — simulated GPU substrate for the SEPO reproduction
//!
//! The SEPO paper's hash table runs as CUDA kernels on an Nvidia GTX 780ti.
//! This crate substitutes that hardware with a *simulated* device that the
//! rest of the workspace programs against:
//!
//! * [`executor::Executor`] — a SIMT-style kernel launcher. Kernels are Rust
//!   closures run once per task, grouped into warps of 32; in parallel mode
//!   warps execute concurrently on host threads, so shared structures see
//!   real atomics and real races. Warp divergence is tracked per warp.
//! * [`memory::DeviceMemory`] — capacity accounting for the 3 GB device,
//!   including the "query free space, then grab all of it for the heap"
//!   idiom the paper's allocator uses.
//! * [`pcie::PcieBus`] — transfer cost model distinguishing bulk DMA from
//!   small remote transactions (the economics behind Figures 7 and
//!   Table III).
//! * [`cost`] — converts counted events ([`metrics::Metrics`]) into
//!   simulated time for either engine; [`clock::SimTime`] keeps simulated
//!   durations apart from wall-clock ones.
//! * [`pipeline`] — BigKernel-style double-buffered transfer/compute
//!   overlap (the analytic makespan model); [`staging`] — the buffer
//!   mechanism itself; [`evict_pipe`] — the same pipeline run in the
//!   device→host eviction direction, with deferred host adoption.
//! * [`paging`] — the LRU demand-paging replay used for Table III.
//! * [`faults`] — seeded, deterministic fault injection (transient
//!   allocation failures, PCIe transfer errors, lane aborts) used to prove
//!   degradation stays graceful under resource trouble.
//! * [`shadow`] — epoch-based shadow-memory sanitizer: data structures
//!   declare logical accesses through [`charge::Charge::access`] and the
//!   sanitizer flags plain/atomic mixing, unpublished cross-warp sharing,
//!   and use-after-evict, at zero simulated cost.
//!
//! Everything that *matters to the paper's claims* — which inserts get
//! postponed, how many SEPO iterations a dataset needs, how many bytes move
//! across the bus — is produced by real execution; only durations are
//! modelled, using rates calibrated to the paper's testbed ([`spec`]).

pub mod charge;
pub mod clock;
pub mod cost;
pub mod evict_pipe;
pub mod executor;
pub mod faults;
pub mod memory;
pub mod metrics;
pub mod paging;
pub mod pcie;
pub mod pipeline;
pub mod pool;
pub mod shadow;
pub mod spec;
pub mod staging;

pub use charge::{Charge, MetricsCharge, NoCharge};
pub use clock::{SimClock, SimTime};
pub use cost::{CpuCostModel, GpuCostModel};
pub use evict_pipe::EvictionPipe;
pub use executor::{
    ExecMode, Executor, LaneCtx, LaunchError, LaunchStats, WarpCharge, WarpScratch,
};
pub use faults::{
    CorruptionConfig, CorruptionDraw, CorruptionError, CorruptionKind, FaultConfig, FaultPlan,
    FaultSite, HardFaultConfig, HardFaultError, HardFaultKind, TransientDrawState,
};
pub use memory::{DeviceMemory, OutOfDeviceMemory, Reservation};
pub use metrics::{ContentionHistogram, Metrics, Snapshot};
pub use paging::{AccessTrace, LruSimulator, PagingOutcome};
pub use pcie::{CompletedTransfer, InFlightTransfer, PcieBus, PcieTransferError};
pub use pipeline::{pipelined_total, serial_total};
pub use pool::WorkerPool;
pub use shadow::{
    AccessKind, Finding, FindingKind, SanitizerReport, ShadowAddr, ShadowEvent, ShadowSanitizer,
};
pub use spec::{DeviceSpec, HostSpec, PcieSpec, SystemSpec, WARP_SIZE};
pub use staging::{stream_chunks, ChunkTooLarge, StagingBuffers};
