//! Device memory capacity accounting.
//!
//! The SEPO allocator sizes its heap by "wait\[ing\] until all other data
//! structures have been allocated, then query\[ing\] GPU memory for its
//! remaining free space, and then allocat\[ing\] the heap with that size"
//! (§IV-A). `DeviceMemory` models exactly that: named reservations against a
//! fixed capacity, plus a query for the remaining free bytes. The actual
//! backing storage lives in host RAM (we are simulating the device), so a
//! reservation hands back nothing but an accounting token.

use crate::faults::{FaultPlan, FaultSite};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Error returned when a reservation does not fit in the remaining device
/// memory — or, with a [`FaultPlan`] attached, when the allocator
/// transiently declined a request that would have fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes that were still free.
    pub free: u64,
    /// Label of the failed reservation.
    pub label: String,
    /// True when the failure was injected by a [`FaultPlan`] rather than a
    /// genuine capacity shortfall; retrying may succeed.
    pub transient: bool,
}

impl fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.transient {
            write!(
                f,
                "transient allocation fault reserving {} bytes for '{}' ({} free)",
                self.requested, self.label, self.free
            )
        } else {
            write!(
                f,
                "out of device memory reserving {} bytes for '{}' ({} free)",
                self.requested, self.label, self.free
            )
        }
    }
}

impl std::error::Error for OutOfDeviceMemory {}

#[derive(Debug, Default)]
struct Ledger {
    reservations: Vec<(String, u64)>,
    used: u64,
}

/// A fixed-capacity device memory with named reservations.
///
/// Cloning shares the underlying ledger (a device has one memory).
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    capacity: u64,
    ledger: Arc<Mutex<Ledger>>,
    faults: Option<Arc<FaultPlan>>,
}

/// Accounting token for a reservation. Dropping it does *not* release the
/// memory — device-side structures in this system live for the whole run;
/// explicit [`DeviceMemory::release`] exists for the heap's page pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservation {
    /// Index into the ledger, used by `release`.
    index: usize,
    /// Size of this reservation in bytes.
    pub bytes: u64,
}

impl DeviceMemory {
    /// A device memory of `capacity` bytes, all free.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            capacity,
            ledger: Arc::new(Mutex::new(Ledger::default())),
            faults: None,
        }
    }

    /// Attach a fault plan: `reserve` consults it and may transiently fail
    /// requests that would otherwise fit (marked `transient` in the error).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.ledger.lock().used
    }

    /// Bytes currently free — the paper's "query GPU memory for its
    /// remaining free space".
    pub fn free(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Reserve `bytes` under `label`, failing if it does not fit. With a
    /// fault plan attached, the request may also fail transiently even when
    /// it fits — callers distinguish via [`OutOfDeviceMemory::transient`]
    /// and may simply retry.
    pub fn reserve(&self, label: &str, bytes: u64) -> Result<Reservation, OutOfDeviceMemory> {
        if let Some(plan) = &self.faults {
            if plan.should_fault(FaultSite::Alloc) {
                return Err(OutOfDeviceMemory {
                    requested: bytes,
                    free: self.free(),
                    label: label.to_string(),
                    transient: true,
                });
            }
        }
        let mut ledger = self.ledger.lock();
        let free = self.capacity - ledger.used;
        if bytes > free {
            return Err(OutOfDeviceMemory {
                requested: bytes,
                free,
                label: label.to_string(),
                transient: false,
            });
        }
        ledger.used += bytes;
        ledger.reservations.push((label.to_string(), bytes));
        Ok(Reservation {
            index: ledger.reservations.len() - 1,
            bytes,
        })
    }

    /// Reserve all remaining free space under `label` (how the SEPO heap is
    /// sized). Returns a zero-byte reservation if nothing is free.
    pub fn reserve_remaining(&self, label: &str) -> Reservation {
        let mut ledger = self.ledger.lock();
        let free = self.capacity - ledger.used;
        ledger.used = self.capacity;
        ledger.reservations.push((label.to_string(), free));
        Reservation {
            index: ledger.reservations.len() - 1,
            bytes: free,
        }
    }

    /// Release a reservation, returning its bytes to the free pool.
    pub fn release(&self, r: Reservation) {
        let mut ledger = self.ledger.lock();
        let entry = &mut ledger.reservations[r.index];
        debug_assert_eq!(entry.1, r.bytes, "double release or stale token");
        let bytes = entry.1;
        entry.1 = 0;
        ledger.used -= bytes;
    }

    /// Labels and sizes of all live reservations (for reporting).
    pub fn reservations(&self) -> Vec<(String, u64)> {
        self.ledger
            .lock()
            .reservations
            .iter()
            .filter(|(_, b)| *b > 0)
            .cloned()
            .collect()
    }

    /// Cross-check the ledger against itself: `used` must equal the sum of
    /// live reservations and never exceed capacity. Returns a description
    /// of the first violation, if any — consumed by the audit layer.
    pub fn verify_ledger(&self) -> Result<(), String> {
        let ledger = self.ledger.lock();
        let sum: u64 = ledger.reservations.iter().map(|(_, b)| b).sum();
        if sum != ledger.used {
            return Err(format!(
                "ledger used {} != sum of live reservations {}",
                ledger.used, sum
            ));
        }
        if ledger.used > self.capacity {
            return Err(format!(
                "ledger used {} exceeds capacity {}",
                ledger.used, self.capacity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_query_free() {
        let mem = DeviceMemory::new(1_000);
        assert_eq!(mem.free(), 1_000);
        let r = mem.reserve("bucket array", 300).unwrap();
        assert_eq!(r.bytes, 300);
        assert_eq!(mem.free(), 700);
        assert_eq!(mem.used(), 300);
    }

    #[test]
    fn over_reservation_fails_with_context() {
        let mem = DeviceMemory::new(100);
        mem.reserve("a", 80).unwrap();
        let err = mem.reserve("heap", 50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.free, 20);
        assert_eq!(err.label, "heap");
        assert!(err.to_string().contains("heap"));
    }

    #[test]
    fn reserve_remaining_takes_everything() {
        let mem = DeviceMemory::new(1_000);
        mem.reserve("locks", 250).unwrap();
        let heap = mem.reserve_remaining("heap");
        assert_eq!(heap.bytes, 750);
        assert_eq!(mem.free(), 0);
    }

    #[test]
    fn release_returns_bytes() {
        let mem = DeviceMemory::new(1_000);
        let r = mem.reserve("staging", 400).unwrap();
        mem.release(r);
        assert_eq!(mem.free(), 1_000);
        // Can re-reserve the full capacity afterwards.
        assert!(mem.reserve("heap", 1_000).is_ok());
    }

    #[test]
    fn reservations_lists_live_entries() {
        let mem = DeviceMemory::new(1_000);
        let a = mem.reserve("a", 100).unwrap();
        mem.reserve("b", 200).unwrap();
        mem.release(a);
        let live = mem.reservations();
        assert_eq!(live, vec![("b".to_string(), 200)]);
    }

    #[test]
    fn clones_share_the_ledger() {
        let mem = DeviceMemory::new(500);
        let alias = mem.clone();
        mem.reserve("x", 200).unwrap();
        assert_eq!(alias.free(), 300);
    }

    #[test]
    fn verify_ledger_passes_through_reserve_release_cycles() {
        let mem = DeviceMemory::new(1_000);
        let a = mem.reserve("a", 100).unwrap();
        mem.reserve("b", 200).unwrap();
        mem.verify_ledger().unwrap();
        mem.release(a);
        mem.verify_ledger().unwrap();
        mem.reserve_remaining("heap");
        mem.verify_ledger().unwrap();
    }

    #[test]
    fn fault_plan_injects_transient_failures_that_leave_capacity_intact() {
        use crate::faults::{FaultConfig, FaultPlan};
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            seed: 11,
            alloc_failure_rate: 1.0,
            pcie_error_rate: 0.0,
            lane_abort_rate: 0.0,
        }));
        let mem = DeviceMemory::new(1_000).with_faults(Arc::clone(&plan));
        let err = mem.reserve("x", 100).unwrap_err();
        assert!(err.transient);
        assert!(err.to_string().contains("transient"));
        // The failed attempt reserved nothing.
        assert_eq!(mem.used(), 0);
        mem.verify_ledger().unwrap();
        assert_eq!(plan.injected(crate::faults::FaultSite::Alloc), 1);
    }

    #[test]
    fn genuine_exhaustion_is_not_transient() {
        use crate::faults::{FaultConfig, FaultPlan};
        let plan = Arc::new(FaultPlan::new(FaultConfig::quiet(3)));
        let mem = DeviceMemory::new(100).with_faults(plan);
        mem.reserve("a", 80).unwrap();
        let err = mem.reserve("b", 50).unwrap_err();
        assert!(!err.transient);
    }
}
