//! Seeded, deterministic fault injection.
//!
//! WarpSpeed (McCoy & Pandey) argues that what blocks large-scale adoption
//! of GPU hash tables is missing failure-handling, not raw speed — and the
//! SEPO paper's own claim is *graceful* degradation under resource
//! exhaustion. A [`FaultPlan`] lets the harness prove that claim: it
//! injects transient allocation failures ([`DeviceMemory`]), PCIe transfer
//! errors ([`PcieBus`]) and lane aborts (the executor) at configurable
//! rates, driven entirely by a seed.
//!
//! Each injection site draws from its own monotone counter hashed together
//! with the seed (SplitMix64). Under [`ExecMode::Deterministic`] and
//! [`ExecMode::ParallelDeterministic`] the draw *order* equals the
//! execution order, so the same seed reproduces the same fault sequence —
//! iteration counts and results JSON stay byte-identical across runs.
//!
//! [`DeviceMemory`]: crate::memory::DeviceMemory
//! [`PcieBus`]: crate::pcie::PcieBus
//! [`ExecMode::Deterministic`]: crate::executor::ExecMode::Deterministic
//! [`ExecMode::ParallelDeterministic`]: crate::executor::ExecMode::ParallelDeterministic

use std::sync::atomic::{AtomicU64, Ordering};

/// Where a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A device-memory reservation transiently fails (driver glitch: the
    /// request would fit, but the allocator says no this time).
    Alloc,
    /// A bulk PCIe transfer fails mid-flight and must be re-issued.
    Pcie,
    /// A kernel lane aborts before running its task; the task stays
    /// unprocessed and is re-issued by the SEPO driver next iteration.
    Lane,
}

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::Alloc => 0,
            FaultSite::Pcie => 1,
            FaultSite::Lane => 2,
        }
    }

    /// Stable per-site salt mixed into the hash so the three streams are
    /// independent even under one seed.
    fn salt(self) -> u64 {
        match self {
            FaultSite::Alloc => 0xA110_C8ED_0000_0001,
            FaultSite::Pcie => 0xBC1E_70BB_0000_0002,
            FaultSite::Lane => 0x1A7E_AB07_0000_0003,
        }
    }
}

const N_SITES: usize = 3;

/// A *hard* fault kind: unlike the transient [`FaultSite`]s, these are not
/// retried in place. They kill the in-flight launch before it touches any
/// state and surface to the driver, which either resumes from its last
/// iteration-boundary checkpoint or aborts the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardFaultKind {
    /// The simulated device is lost (ECC double-bit error, bus drop,
    /// external reset). All device memory contents are gone.
    DeviceLost,
    /// The launch itself is poisoned (corrupted kernel image, sticky
    /// uncorrectable error): it never starts, and the device context must
    /// be rebuilt before anything else can run.
    PoisonedLaunch,
}

const N_HARD_KINDS: usize = 2;

/// A *silent* corruption kind: unlike both the transient [`FaultSite`]s and
/// the [`HardFaultKind`]s, these do not announce themselves — they flip bits
/// in data at rest or in flight and it is the integrity layer's job
/// (CRC32C stamps in `sepo_core`) to notice before the damage propagates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// A bit flips in an evicted page while it crosses the PCIe bus
    /// (in-flight transfer corruption, including the eviction pipe's
    /// ledgered transfers).
    PcieBitFlip,
    /// A bit flips in a device-resident page between kernel launches
    /// (cosmic ray / weak cell in simulated device DRAM).
    RestingPageFlip,
    /// A byte is damaged in a checkpoint or host-image file on its way
    /// to or from disk.
    DiskByteFlip,
}

const N_CORRUPTION_KINDS: usize = 3;

impl CorruptionKind {
    /// All kinds in draw order.
    pub const ALL: [CorruptionKind; N_CORRUPTION_KINDS] = [
        CorruptionKind::PcieBitFlip,
        CorruptionKind::RestingPageFlip,
        CorruptionKind::DiskByteFlip,
    ];

    fn index(self) -> usize {
        match self {
            CorruptionKind::PcieBitFlip => 0,
            CorruptionKind::RestingPageFlip => 1,
            CorruptionKind::DiskByteFlip => 2,
        }
    }

    /// Per-kind salt; distinct from every transient-site and hard-kind salt
    /// so corruption streams never correlate with fault streams.
    fn salt(self) -> u64 {
        match self {
            CorruptionKind::PcieBitFlip => 0xBADF_00D0_0000_0006,
            CorruptionKind::RestingPageFlip => 0x0E57_F11A_0000_0007,
            CorruptionKind::DiskByteFlip => 0xD15C_B17E_0000_0008,
        }
    }

    /// Human-readable name used in error messages and reports.
    pub fn label(self) -> &'static str {
        match self {
            CorruptionKind::PcieBitFlip => "pcie bit flip",
            CorruptionKind::RestingPageFlip => "resting page flip",
            CorruptionKind::DiskByteFlip => "disk byte flip",
        }
    }
}

/// One corruption decision that hit: which kind, the per-kind draw index
/// (correlates a failure with a seed when reproducing), and an entropy word
/// derived from the draw hash that injection sites use to pick *which* bit
/// or byte to flip — so the damaged offset is as reproducible as the
/// decision to damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionDraw {
    /// Which corruption kind struck.
    pub kind: CorruptionKind,
    /// The 0-based draw index (for this kind) that hit.
    pub draw: u64,
    /// Deterministic entropy for choosing the flipped bit/byte offset.
    pub entropy: u64,
}

/// The error value an *unrecovered* corruption surfaces as (the witness
/// carried in `SepoError::Corrupt*` chains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionError {
    /// Which corruption kind struck.
    pub kind: CorruptionKind,
    /// The 0-based draw index (for this kind) that hit.
    pub draw: u64,
}

impl std::fmt::Display for CorruptionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (corruption draw #{})", self.kind.label(), self.draw)
    }
}

impl std::error::Error for CorruptionError {}

/// Per-kind silent-corruption rates in `[0.0, 1.0]`, plus their own seed.
/// Kept separate from [`FaultConfig`] and [`HardFaultConfig`] so existing
/// plans are untouched: a corruption-free comparison run simply never
/// attaches a corruption config, and its transient/hard draw streams stay
/// byte-identical to a corrupting run's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionConfig {
    /// Seed for the corruption draw streams (independent of the transient
    /// and hard seeds).
    pub seed: u64,
    /// Probability that an evicted page is damaged in flight on the bus.
    pub pcie_bit_flip_rate: f64,
    /// Per-page, per-iteration probability that a resident page is damaged
    /// between launches.
    pub resting_page_flip_rate: f64,
    /// Probability that a checkpoint/host-image write is damaged on disk.
    pub disk_byte_flip_rate: f64,
}

impl CorruptionConfig {
    /// Every rate zero (a base to tweak).
    pub fn quiet(seed: u64) -> Self {
        CorruptionConfig {
            seed,
            pcie_bit_flip_rate: 0.0,
            resting_page_flip_rate: 0.0,
            disk_byte_flip_rate: 0.0,
        }
    }

    /// The silent-corruption mix used by `--corrupt <seed>`: rates high
    /// enough that multi-iteration runs see detections on every path.
    pub fn standard(seed: u64) -> Self {
        CorruptionConfig {
            seed,
            pcie_bit_flip_rate: 0.05,
            resting_page_flip_rate: 0.01,
            disk_byte_flip_rate: 0.05,
        }
    }

    fn rate(&self, kind: CorruptionKind) -> f64 {
        match kind {
            CorruptionKind::PcieBitFlip => self.pcie_bit_flip_rate,
            CorruptionKind::RestingPageFlip => self.resting_page_flip_rate,
            CorruptionKind::DiskByteFlip => self.disk_byte_flip_rate,
        }
    }
}

impl HardFaultKind {
    fn index(self) -> usize {
        match self {
            HardFaultKind::DeviceLost => 0,
            HardFaultKind::PoisonedLaunch => 1,
        }
    }

    /// Per-kind salt; distinct from every transient-site salt so the hard
    /// streams never correlate with the transient ones.
    fn salt(self) -> u64 {
        match self {
            HardFaultKind::DeviceLost => 0xDE51_CE10_0000_0004,
            HardFaultKind::PoisonedLaunch => 0x9015_0ED0_0000_0005,
        }
    }

    /// Human-readable name used in error messages and reports.
    pub fn label(self) -> &'static str {
        match self {
            HardFaultKind::DeviceLost => "device lost",
            HardFaultKind::PoisonedLaunch => "poisoned launch",
        }
    }
}

/// The error value a hard fault surfaces as: which kind struck, and the
/// per-kind draw index that produced it (useful to correlate a failure with
/// a seed when reproducing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardFaultError {
    /// Which hard fault struck.
    pub kind: HardFaultKind,
    /// The 0-based draw index (for this kind) that hit.
    pub draw: u64,
}

impl std::fmt::Display for HardFaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (hard-fault draw #{})", self.kind.label(), self.draw)
    }
}

impl std::error::Error for HardFaultError {}

/// Per-kind hard-fault rates in `[0.0, 1.0]`, plus their own seed. Kept
/// separate from [`FaultConfig`] so existing transient plans are untouched:
/// an unkilled comparison run simply never attaches a hard config, and its
/// transient draw streams stay byte-identical to a chaos run's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardFaultConfig {
    /// Seed for the hard-fault draw streams (independent of the transient
    /// seed).
    pub seed: u64,
    /// Probability that a launch is killed by device loss.
    pub device_loss_rate: f64,
    /// Probability that a launch is poisoned before it starts.
    pub poisoned_launch_rate: f64,
}

impl HardFaultConfig {
    /// Every rate zero (a base to tweak).
    pub fn quiet(seed: u64) -> Self {
        HardFaultConfig {
            seed,
            device_loss_rate: 0.0,
            poisoned_launch_rate: 0.0,
        }
    }

    /// The chaos mix used by `--chaos-seed <seed>`: per-launch kill
    /// probabilities high enough that multi-iteration runs see recoveries.
    pub fn standard(seed: u64) -> Self {
        HardFaultConfig {
            seed,
            device_loss_rate: 0.01,
            poisoned_launch_rate: 0.005,
        }
    }

    fn rate(&self, kind: HardFaultKind) -> f64 {
        match kind {
            HardFaultKind::DeviceLost => self.device_loss_rate,
            HardFaultKind::PoisonedLaunch => self.poisoned_launch_rate,
        }
    }
}

/// Scale a `[0,1]` rate to the u64 threshold space (draw < threshold →
/// inject); saturates at `u64::MAX` because `u64::MAX as f64` rounds up.
fn threshold_for(rate: f64) -> u64 {
    let r = rate.clamp(0.0, 1.0);
    if r >= 1.0 {
        u64::MAX
    } else {
        (r * u64::MAX as f64) as u64
    }
}

/// Hard-fault state attached to a [`FaultPlan`] via
/// [`FaultPlan::with_hard`].
#[derive(Debug)]
struct HardFaults {
    config: HardFaultConfig,
    thresholds: [u64; N_HARD_KINDS],
    draws: [AtomicU64; N_HARD_KINDS],
    injected: [AtomicU64; N_HARD_KINDS],
}

/// Silent-corruption state attached to a [`FaultPlan`] via
/// [`FaultPlan::with_corruption`].
#[derive(Debug)]
struct Corruptions {
    config: CorruptionConfig,
    thresholds: [u64; N_CORRUPTION_KINDS],
    draws: [AtomicU64; N_CORRUPTION_KINDS],
    injected: [AtomicU64; N_CORRUPTION_KINDS],
}

/// Point-in-time copy of the three *transient* sites' draw/injection
/// counters, captured into iteration-boundary checkpoints so a resumed run
/// replays the exact same transient fault decisions as an unkilled run.
/// Hard-fault counters are deliberately **not** part of this: restoring
/// them would make the replayed launch re-draw the very kill that triggered
/// recovery, looping forever.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransientDrawState {
    /// Per-site decisions drawn, indexed like [`FaultSite`].
    pub draws: [u64; N_SITES],
    /// Per-site faults injected, indexed like [`FaultSite`].
    pub injected: [u64; N_SITES],
}

/// Per-site injection rates in `[0.0, 1.0]`, plus the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic draw streams.
    pub seed: u64,
    /// Probability that a device-memory reservation transiently fails.
    pub alloc_failure_rate: f64,
    /// Probability that a bulk PCIe transfer attempt errors.
    pub pcie_error_rate: f64,
    /// Probability that a kernel lane aborts before its task runs.
    pub lane_abort_rate: f64,
}

impl FaultConfig {
    /// A plan with every rate zero (useful as a base to tweak).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            alloc_failure_rate: 0.0,
            pcie_error_rate: 0.0,
            lane_abort_rate: 0.0,
        }
    }

    /// The default adversarial mix used by `--faults <seed>`: rare
    /// allocation and transfer errors, occasional lane aborts.
    pub fn standard(seed: u64) -> Self {
        FaultConfig {
            seed,
            alloc_failure_rate: 0.02,
            pcie_error_rate: 0.01,
            lane_abort_rate: 0.005,
        }
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::Alloc => self.alloc_failure_rate,
            FaultSite::Pcie => self.pcie_error_rate,
            FaultSite::Lane => self.lane_abort_rate,
        }
    }
}

/// SplitMix64 finalizer: decorrelates consecutive counter values.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A live fault plan: [`FaultConfig`] plus per-site draw and injection
/// counters. One plan belongs to one simulation (like `Metrics`); sharing
/// a plan across concurrent simulations would interleave their draw
/// streams and break reproducibility.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    /// Thresholds precomputed on the u64 scale: draw < threshold → inject.
    thresholds: [u64; N_SITES],
    draws: [AtomicU64; N_SITES],
    injected: [AtomicU64; N_SITES],
    /// Hard (non-retryable) fault streams; absent unless
    /// [`FaultPlan::with_hard`] attached them.
    hard: Option<HardFaults>,
    /// Silent-corruption streams; absent unless
    /// [`FaultPlan::with_corruption`] attached them.
    corruption: Option<Corruptions>,
}

impl FaultPlan {
    pub fn new(config: FaultConfig) -> Self {
        let thresholds = [FaultSite::Alloc, FaultSite::Pcie, FaultSite::Lane]
            .map(|s| threshold_for(config.rate(s)));
        FaultPlan {
            config,
            thresholds,
            draws: Default::default(),
            injected: Default::default(),
            hard: None,
            corruption: None,
        }
    }

    /// Attach hard-fault streams (device loss, poisoned launches) to this
    /// plan. Hard faults draw once per kernel launch, *before* the launch
    /// touches any state, so a killed launch mutates nothing.
    pub fn with_hard(mut self, config: HardFaultConfig) -> Self {
        let thresholds = [HardFaultKind::DeviceLost, HardFaultKind::PoisonedLaunch]
            .map(|k| threshold_for(config.rate(k)));
        self.hard = Some(HardFaults {
            config,
            thresholds,
            draws: Default::default(),
            injected: Default::default(),
        });
        self
    }

    /// Attach silent-corruption streams (in-flight bit flips, resting-page
    /// flips, disk byte flips) to this plan. Corruption draws once per
    /// *opportunity* (one per transfer attempt, one per resident page per
    /// iteration, one per disk write) at quiescent points, so the draw
    /// order is deterministic under `ParallelDeterministic`.
    pub fn with_corruption(mut self, config: CorruptionConfig) -> Self {
        let thresholds = CorruptionKind::ALL.map(|k| threshold_for(config.rate(k)));
        self.corruption = Some(Corruptions {
            config,
            thresholds,
            draws: Default::default(),
            injected: Default::default(),
        });
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The hard-fault configuration, when attached.
    pub fn hard_config(&self) -> Option<&HardFaultConfig> {
        self.hard.as_ref().map(|h| &h.config)
    }

    /// Whether any hard-fault stream is attached with a nonzero rate.
    pub fn has_hard_faults(&self) -> bool {
        self.hard
            .as_ref()
            .is_some_and(|h| h.thresholds.iter().any(|&t| t != 0))
    }

    /// Draw the hard-fault decisions for one launch; `Some` means the
    /// launch is killed before it starts. Kinds are drawn in a fixed order
    /// (device loss first) and the first hit short-circuits, so the draw
    /// sequence is deterministic under a seed. Hard draw counters are never
    /// rolled back by checkpoint recovery — a replayed launch draws the
    /// *next* decision and therefore cannot deterministically re-kill
    /// itself.
    pub fn draw_hard(&self) -> Option<HardFaultError> {
        let h = self.hard.as_ref()?;
        for kind in [HardFaultKind::DeviceLost, HardFaultKind::PoisonedLaunch] {
            let i = kind.index();
            if h.thresholds[i] == 0 {
                continue; // rate 0: don't burn a counter increment
            }
            let n = h.draws[i].fetch_add(1, Ordering::Relaxed);
            let hash =
                splitmix64(h.config.seed ^ kind.salt() ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D));
            if hash < h.thresholds[i] {
                h.injected[i].fetch_add(1, Ordering::Relaxed);
                return Some(HardFaultError { kind, draw: n });
            }
        }
        None
    }

    /// Hard-fault decisions drawn so far for `kind` (0 when no hard config
    /// is attached).
    pub fn hard_draws(&self, kind: HardFaultKind) -> u64 {
        self.hard
            .as_ref()
            .map_or(0, |h| h.draws[kind.index()].load(Ordering::Relaxed))
    }

    /// Hard faults injected so far for `kind` (0 when no hard config is
    /// attached).
    pub fn hard_injected(&self, kind: HardFaultKind) -> u64 {
        self.hard
            .as_ref()
            .map_or(0, |h| h.injected[kind.index()].load(Ordering::Relaxed))
    }

    /// Total hard faults injected across both kinds.
    pub fn total_hard_injected(&self) -> u64 {
        self.hard.as_ref().map_or(0, |h| {
            h.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
        })
    }

    /// The silent-corruption configuration, when attached.
    pub fn corruption_config(&self) -> Option<&CorruptionConfig> {
        self.corruption.as_ref().map(|c| &c.config)
    }

    /// Whether any silent-corruption stream is attached with a nonzero
    /// rate. Gates every injection/stamp/scrub code path so corruption-off
    /// runs pay nothing and stay byte-identical.
    pub fn has_corruption(&self) -> bool {
        self.corruption
            .as_ref()
            .is_some_and(|c| c.thresholds.iter().any(|&t| t != 0))
    }

    /// Draw the next corruption decision for `kind`: `Some` means "flip a
    /// bit/byte here", with deterministic entropy for choosing the offset.
    /// Like hard faults, corruption counters are never rolled back by
    /// checkpoint recovery — a replayed iteration draws the *next*
    /// decision and therefore cannot deterministically re-corrupt itself.
    pub fn draw_corruption(&self, kind: CorruptionKind) -> Option<CorruptionDraw> {
        let c = self.corruption.as_ref()?;
        let i = kind.index();
        if c.thresholds[i] == 0 {
            return None; // rate 0: don't burn a counter increment
        }
        let n = c.draws[i].fetch_add(1, Ordering::Relaxed);
        let hash = splitmix64(c.config.seed ^ kind.salt() ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D));
        if hash < c.thresholds[i] {
            c.injected[i].fetch_add(1, Ordering::Relaxed);
            Some(CorruptionDraw {
                kind,
                draw: n,
                // Re-finalize the hit hash so the offset entropy is
                // decorrelated from the threshold comparison.
                entropy: splitmix64(hash),
            })
        } else {
            None
        }
    }

    /// Corruption decisions drawn so far for `kind` (0 when no corruption
    /// config is attached).
    pub fn corruption_draws(&self, kind: CorruptionKind) -> u64 {
        self.corruption
            .as_ref()
            .map_or(0, |c| c.draws[kind.index()].load(Ordering::Relaxed))
    }

    /// Corruptions injected so far for `kind` (0 when no corruption config
    /// is attached).
    pub fn corruption_injected(&self, kind: CorruptionKind) -> u64 {
        self.corruption
            .as_ref()
            .map_or(0, |c| c.injected[kind.index()].load(Ordering::Relaxed))
    }

    /// Total corruptions injected across all kinds.
    pub fn total_corruption_injected(&self) -> u64 {
        self.corruption.as_ref().map_or(0, |c| {
            c.injected.iter().map(|n| n.load(Ordering::Relaxed)).sum()
        })
    }

    /// Capture the transient draw/injection counters for a checkpoint.
    /// Only meaningful at quiescent points (iteration boundaries).
    pub fn transient_snapshot(&self) -> TransientDrawState {
        TransientDrawState {
            draws: std::array::from_fn(|i| self.draws[i].load(Ordering::Relaxed)),
            injected: std::array::from_fn(|i| self.injected[i].load(Ordering::Relaxed)),
        }
    }

    /// Roll the transient draw/injection counters back to a checkpointed
    /// state, so a resumed iteration replays the exact transient fault
    /// decisions the killed attempt drew. Hard counters are untouched.
    pub fn restore_transient(&self, s: &TransientDrawState) {
        for i in 0..N_SITES {
            self.draws[i].store(s.draws[i], Ordering::Relaxed);
            self.injected[i].store(s.injected[i], Ordering::Relaxed);
        }
    }

    /// Draw the next decision for `site`: `true` means "inject a fault
    /// here". Deterministic in the draw sequence: the n-th call for a site
    /// under a given seed always returns the same answer.
    pub fn should_fault(&self, site: FaultSite) -> bool {
        let i = site.index();
        if self.thresholds[i] == 0 {
            return false; // rate 0: don't even burn a counter increment
        }
        let n = self.draws[i].fetch_add(1, Ordering::Relaxed);
        let hash =
            splitmix64(self.config.seed ^ site.salt() ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let hit = hash < self.thresholds[i];
        if hit {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Decisions drawn so far for `site`.
    pub fn draws(&self, site: FaultSite) -> u64 {
        self.draws[site.index()].load(Ordering::Relaxed)
    }

    /// Faults injected so far for `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_fault() {
        let p = FaultPlan::new(FaultConfig::quiet(42));
        for _ in 0..10_000 {
            assert!(!p.should_fault(FaultSite::Alloc));
            assert!(!p.should_fault(FaultSite::Pcie));
            assert!(!p.should_fault(FaultSite::Lane));
        }
        assert_eq!(p.total_injected(), 0);
    }

    #[test]
    fn rate_one_always_faults() {
        let p = FaultPlan::new(FaultConfig {
            seed: 1,
            alloc_failure_rate: 1.0,
            pcie_error_rate: 0.0,
            lane_abort_rate: 0.0,
        });
        for _ in 0..1_000 {
            assert!(p.should_fault(FaultSite::Alloc));
        }
        assert_eq!(p.injected(FaultSite::Alloc), 1_000);
    }

    #[test]
    fn same_seed_reproduces_the_same_sequence() {
        let cfg = FaultConfig::standard(0xDEAD_BEEF);
        let a = FaultPlan::new(cfg);
        let b = FaultPlan::new(cfg);
        let seq_a: Vec<bool> = (0..5_000)
            .map(|_| a.should_fault(FaultSite::Lane))
            .collect();
        let seq_b: Vec<bool> = (0..5_000)
            .map(|_| b.should_fault(FaultSite::Lane))
            .collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.injected(FaultSite::Lane), b.injected(FaultSite::Lane));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(FaultConfig::standard(1));
        let b = FaultPlan::new(FaultConfig::standard(2));
        let seq_a: Vec<bool> = (0..5_000)
            .map(|_| a.should_fault(FaultSite::Lane))
            .collect();
        let seq_b: Vec<bool> = (0..5_000)
            .map(|_| b.should_fault(FaultSite::Lane))
            .collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let p = FaultPlan::new(FaultConfig {
            seed: 99,
            alloc_failure_rate: 0.5,
            pcie_error_rate: 0.5,
            lane_abort_rate: 0.5,
        });
        let alloc: Vec<bool> = (0..2_000)
            .map(|_| p.should_fault(FaultSite::Alloc))
            .collect();
        let pcie: Vec<bool> = (0..2_000)
            .map(|_| p.should_fault(FaultSite::Pcie))
            .collect();
        assert_ne!(alloc, pcie, "sites must not share a stream");
    }

    #[test]
    fn plans_without_hard_config_never_draw_hard() {
        let p = FaultPlan::new(FaultConfig::standard(3));
        assert!(!p.has_hard_faults());
        for _ in 0..1_000 {
            assert!(p.draw_hard().is_none());
        }
        assert_eq!(p.total_hard_injected(), 0);
        assert_eq!(p.hard_draws(HardFaultKind::DeviceLost), 0);
    }

    #[test]
    fn quiet_hard_rates_never_kill() {
        let p = FaultPlan::new(FaultConfig::quiet(1)).with_hard(HardFaultConfig::quiet(2));
        assert!(!p.has_hard_faults());
        for _ in 0..10_000 {
            assert!(p.draw_hard().is_none());
        }
        assert_eq!(p.total_hard_injected(), 0);
    }

    #[test]
    fn hard_rate_one_kills_every_launch() {
        let p = FaultPlan::new(FaultConfig::quiet(1)).with_hard(HardFaultConfig {
            seed: 9,
            device_loss_rate: 1.0,
            poisoned_launch_rate: 0.0,
        });
        for n in 0..1_000u64 {
            let hit = p.draw_hard().expect("rate 1.0 must kill");
            assert_eq!(hit.kind, HardFaultKind::DeviceLost);
            assert_eq!(hit.draw, n);
        }
        assert_eq!(p.hard_injected(HardFaultKind::DeviceLost), 1_000);
        // Device loss short-circuits: the poisoned-launch stream never drew.
        assert_eq!(p.hard_draws(HardFaultKind::PoisonedLaunch), 0);
    }

    #[test]
    fn same_hard_seed_reproduces_the_same_kill_points() {
        let mk = || {
            FaultPlan::new(FaultConfig::quiet(7)).with_hard(HardFaultConfig {
                seed: 0xC0FFEE,
                device_loss_rate: 0.05,
                poisoned_launch_rate: 0.02,
            })
        };
        let (a, b) = (mk(), mk());
        let seq_a: Vec<Option<HardFaultKind>> =
            (0..5_000).map(|_| a.draw_hard().map(|e| e.kind)).collect();
        let seq_b: Vec<Option<HardFaultKind>> =
            (0..5_000).map(|_| b.draw_hard().map(|e| e.kind)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(a.total_hard_injected() > 0, "rates should produce kills");
    }

    #[test]
    fn hard_draws_do_not_perturb_transient_streams() {
        let cfg = FaultConfig::standard(0xFEED);
        let plain = FaultPlan::new(cfg);
        let chaotic = FaultPlan::new(cfg).with_hard(HardFaultConfig::standard(0xFEED));
        let seq_plain: Vec<bool> = (0..5_000)
            .map(|_| plain.should_fault(FaultSite::Lane))
            .collect();
        let seq_chaos: Vec<bool> = (0..5_000)
            .map(|_| {
                let _ = chaotic.draw_hard();
                chaotic.should_fault(FaultSite::Lane)
            })
            .collect();
        assert_eq!(
            seq_plain, seq_chaos,
            "attaching hard faults must not shift transient draws"
        );
    }

    #[test]
    fn transient_snapshot_round_trips_and_replays() {
        let p = FaultPlan::new(FaultConfig {
            seed: 11,
            alloc_failure_rate: 0.3,
            pcie_error_rate: 0.3,
            lane_abort_rate: 0.3,
        });
        for _ in 0..100 {
            p.should_fault(FaultSite::Alloc);
            p.should_fault(FaultSite::Pcie);
            p.should_fault(FaultSite::Lane);
        }
        let snap = p.transient_snapshot();
        let first: Vec<bool> = (0..200).map(|_| p.should_fault(FaultSite::Lane)).collect();
        p.restore_transient(&snap);
        assert_eq!(p.transient_snapshot(), snap);
        let replay: Vec<bool> = (0..200).map(|_| p.should_fault(FaultSite::Lane)).collect();
        assert_eq!(first, replay, "restored counters must replay identically");
    }

    #[test]
    fn restore_transient_leaves_hard_counters_alone() {
        let p = FaultPlan::new(FaultConfig::quiet(1)).with_hard(HardFaultConfig {
            seed: 5,
            device_loss_rate: 1.0,
            poisoned_launch_rate: 0.0,
        });
        let snap = p.transient_snapshot();
        assert!(p.draw_hard().is_some());
        p.restore_transient(&snap);
        // The next hard draw advances — recovery cannot re-draw the kill.
        assert_eq!(p.draw_hard().expect("still rate 1.0").draw, 1);
    }

    #[test]
    fn plans_without_corruption_config_never_draw_corruption() {
        let p = FaultPlan::new(FaultConfig::standard(3));
        assert!(!p.has_corruption());
        for kind in CorruptionKind::ALL {
            for _ in 0..1_000 {
                assert!(p.draw_corruption(kind).is_none());
            }
            assert_eq!(p.corruption_draws(kind), 0);
        }
        assert_eq!(p.total_corruption_injected(), 0);
    }

    #[test]
    fn quiet_corruption_rates_burn_no_draws() {
        let p = FaultPlan::new(FaultConfig::quiet(1)).with_corruption(CorruptionConfig::quiet(2));
        assert!(!p.has_corruption());
        for kind in CorruptionKind::ALL {
            for _ in 0..10_000 {
                assert!(p.draw_corruption(kind).is_none());
            }
            assert_eq!(p.corruption_draws(kind), 0, "rate 0 must not burn draws");
        }
        assert_eq!(p.total_corruption_injected(), 0);
    }

    #[test]
    fn corruption_rate_one_always_hits_with_monotone_draws() {
        let p = FaultPlan::new(FaultConfig::quiet(1)).with_corruption(CorruptionConfig {
            seed: 9,
            pcie_bit_flip_rate: 1.0,
            resting_page_flip_rate: 0.0,
            disk_byte_flip_rate: 0.0,
        });
        assert!(p.has_corruption());
        for n in 0..1_000u64 {
            let hit = p
                .draw_corruption(CorruptionKind::PcieBitFlip)
                .expect("rate 1.0 must hit");
            assert_eq!(hit.kind, CorruptionKind::PcieBitFlip);
            assert_eq!(hit.draw, n);
        }
        assert_eq!(p.corruption_injected(CorruptionKind::PcieBitFlip), 1_000);
        assert_eq!(p.corruption_draws(CorruptionKind::RestingPageFlip), 0);
    }

    #[test]
    fn same_corruption_seed_reproduces_hits_and_entropy() {
        let mk = || {
            FaultPlan::new(FaultConfig::quiet(7)).with_corruption(CorruptionConfig {
                seed: 0xC0FFEE,
                pcie_bit_flip_rate: 0.05,
                resting_page_flip_rate: 0.03,
                disk_byte_flip_rate: 0.02,
            })
        };
        let (a, b) = (mk(), mk());
        for kind in CorruptionKind::ALL {
            let seq_a: Vec<Option<CorruptionDraw>> =
                (0..5_000).map(|_| a.draw_corruption(kind)).collect();
            let seq_b: Vec<Option<CorruptionDraw>> =
                (0..5_000).map(|_| b.draw_corruption(kind)).collect();
            assert_eq!(seq_a, seq_b, "kind {kind:?} must replay exactly");
            assert!(a.corruption_injected(kind) > 0, "rates should hit");
        }
    }

    #[test]
    fn corruption_draws_do_not_perturb_transient_or_hard_streams() {
        let cfg = FaultConfig::standard(0xFEED);
        let plain = FaultPlan::new(cfg).with_hard(HardFaultConfig::standard(0xFEED));
        let noisy = FaultPlan::new(cfg)
            .with_hard(HardFaultConfig::standard(0xFEED))
            .with_corruption(CorruptionConfig::standard(0xFEED));
        let seq_plain: Vec<(bool, Option<HardFaultKind>)> = (0..5_000)
            .map(|_| {
                (
                    plain.should_fault(FaultSite::Lane),
                    plain.draw_hard().map(|e| e.kind),
                )
            })
            .collect();
        let seq_noisy: Vec<(bool, Option<HardFaultKind>)> = (0..5_000)
            .map(|_| {
                for kind in CorruptionKind::ALL {
                    let _ = noisy.draw_corruption(kind);
                }
                (
                    noisy.should_fault(FaultSite::Lane),
                    noisy.draw_hard().map(|e| e.kind),
                )
            })
            .collect();
        assert_eq!(
            seq_plain, seq_noisy,
            "attaching corruption must not shift transient/hard draws"
        );
    }

    #[test]
    fn restore_transient_leaves_corruption_counters_alone() {
        let p = FaultPlan::new(FaultConfig::quiet(1)).with_corruption(CorruptionConfig {
            seed: 5,
            pcie_bit_flip_rate: 1.0,
            resting_page_flip_rate: 0.0,
            disk_byte_flip_rate: 0.0,
        });
        let snap = p.transient_snapshot();
        assert!(p.draw_corruption(CorruptionKind::PcieBitFlip).is_some());
        p.restore_transient(&snap);
        // The next corruption draw advances — recovery cannot replay the
        // very flip that triggered it.
        assert_eq!(
            p.draw_corruption(CorruptionKind::PcieBitFlip)
                .expect("still rate 1.0")
                .draw,
            1
        );
    }

    #[test]
    fn corruption_error_display_names_kind_and_draw() {
        let e = CorruptionError {
            kind: CorruptionKind::RestingPageFlip,
            draw: 17,
        };
        assert_eq!(e.to_string(), "resting page flip (corruption draw #17)");
    }

    #[test]
    fn injection_rate_tracks_configured_rate() {
        let p = FaultPlan::new(FaultConfig {
            seed: 7,
            alloc_failure_rate: 0.25,
            pcie_error_rate: 0.0,
            lane_abort_rate: 0.0,
        });
        let n = 100_000u64;
        for _ in 0..n {
            p.should_fault(FaultSite::Alloc);
        }
        let rate = p.injected(FaultSite::Alloc) as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed rate {rate}");
        assert_eq!(p.draws(FaultSite::Alloc), n);
    }
}
