//! Seeded, deterministic fault injection.
//!
//! WarpSpeed (McCoy & Pandey) argues that what blocks large-scale adoption
//! of GPU hash tables is missing failure-handling, not raw speed — and the
//! SEPO paper's own claim is *graceful* degradation under resource
//! exhaustion. A [`FaultPlan`] lets the harness prove that claim: it
//! injects transient allocation failures ([`DeviceMemory`]), PCIe transfer
//! errors ([`PcieBus`]) and lane aborts (the executor) at configurable
//! rates, driven entirely by a seed.
//!
//! Each injection site draws from its own monotone counter hashed together
//! with the seed (SplitMix64). Under [`ExecMode::Deterministic`] and
//! [`ExecMode::ParallelDeterministic`] the draw *order* equals the
//! execution order, so the same seed reproduces the same fault sequence —
//! iteration counts and results JSON stay byte-identical across runs.
//!
//! [`DeviceMemory`]: crate::memory::DeviceMemory
//! [`PcieBus`]: crate::pcie::PcieBus
//! [`ExecMode::Deterministic`]: crate::executor::ExecMode::Deterministic
//! [`ExecMode::ParallelDeterministic`]: crate::executor::ExecMode::ParallelDeterministic

use std::sync::atomic::{AtomicU64, Ordering};

/// Where a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A device-memory reservation transiently fails (driver glitch: the
    /// request would fit, but the allocator says no this time).
    Alloc,
    /// A bulk PCIe transfer fails mid-flight and must be re-issued.
    Pcie,
    /// A kernel lane aborts before running its task; the task stays
    /// unprocessed and is re-issued by the SEPO driver next iteration.
    Lane,
}

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::Alloc => 0,
            FaultSite::Pcie => 1,
            FaultSite::Lane => 2,
        }
    }

    /// Stable per-site salt mixed into the hash so the three streams are
    /// independent even under one seed.
    fn salt(self) -> u64 {
        match self {
            FaultSite::Alloc => 0xA110_C8ED_0000_0001,
            FaultSite::Pcie => 0xBC1E_70BB_0000_0002,
            FaultSite::Lane => 0x1A7E_AB07_0000_0003,
        }
    }
}

const N_SITES: usize = 3;

/// Per-site injection rates in `[0.0, 1.0]`, plus the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic draw streams.
    pub seed: u64,
    /// Probability that a device-memory reservation transiently fails.
    pub alloc_failure_rate: f64,
    /// Probability that a bulk PCIe transfer attempt errors.
    pub pcie_error_rate: f64,
    /// Probability that a kernel lane aborts before its task runs.
    pub lane_abort_rate: f64,
}

impl FaultConfig {
    /// A plan with every rate zero (useful as a base to tweak).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            alloc_failure_rate: 0.0,
            pcie_error_rate: 0.0,
            lane_abort_rate: 0.0,
        }
    }

    /// The default adversarial mix used by `--faults <seed>`: rare
    /// allocation and transfer errors, occasional lane aborts.
    pub fn standard(seed: u64) -> Self {
        FaultConfig {
            seed,
            alloc_failure_rate: 0.02,
            pcie_error_rate: 0.01,
            lane_abort_rate: 0.005,
        }
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::Alloc => self.alloc_failure_rate,
            FaultSite::Pcie => self.pcie_error_rate,
            FaultSite::Lane => self.lane_abort_rate,
        }
    }
}

/// SplitMix64 finalizer: decorrelates consecutive counter values.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A live fault plan: [`FaultConfig`] plus per-site draw and injection
/// counters. One plan belongs to one simulation (like `Metrics`); sharing
/// a plan across concurrent simulations would interleave their draw
/// streams and break reproducibility.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    /// Thresholds precomputed on the u64 scale: draw < threshold → inject.
    thresholds: [u64; N_SITES],
    draws: [AtomicU64; N_SITES],
    injected: [AtomicU64; N_SITES],
}

impl FaultPlan {
    pub fn new(config: FaultConfig) -> Self {
        let thresholds = [FaultSite::Alloc, FaultSite::Pcie, FaultSite::Lane].map(|s| {
            let r = config.rate(s).clamp(0.0, 1.0);
            // `u64::MAX as f64 * 1.0` rounds up past MAX; saturate there.
            if r >= 1.0 {
                u64::MAX
            } else {
                (r * u64::MAX as f64) as u64
            }
        });
        FaultPlan {
            config,
            thresholds,
            draws: Default::default(),
            injected: Default::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Draw the next decision for `site`: `true` means "inject a fault
    /// here". Deterministic in the draw sequence: the n-th call for a site
    /// under a given seed always returns the same answer.
    pub fn should_fault(&self, site: FaultSite) -> bool {
        let i = site.index();
        if self.thresholds[i] == 0 {
            return false; // rate 0: don't even burn a counter increment
        }
        let n = self.draws[i].fetch_add(1, Ordering::Relaxed);
        let hash =
            splitmix64(self.config.seed ^ site.salt() ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let hit = hash < self.thresholds[i];
        if hit {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Decisions drawn so far for `site`.
    pub fn draws(&self, site: FaultSite) -> u64 {
        self.draws[site.index()].load(Ordering::Relaxed)
    }

    /// Faults injected so far for `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_fault() {
        let p = FaultPlan::new(FaultConfig::quiet(42));
        for _ in 0..10_000 {
            assert!(!p.should_fault(FaultSite::Alloc));
            assert!(!p.should_fault(FaultSite::Pcie));
            assert!(!p.should_fault(FaultSite::Lane));
        }
        assert_eq!(p.total_injected(), 0);
    }

    #[test]
    fn rate_one_always_faults() {
        let p = FaultPlan::new(FaultConfig {
            seed: 1,
            alloc_failure_rate: 1.0,
            pcie_error_rate: 0.0,
            lane_abort_rate: 0.0,
        });
        for _ in 0..1_000 {
            assert!(p.should_fault(FaultSite::Alloc));
        }
        assert_eq!(p.injected(FaultSite::Alloc), 1_000);
    }

    #[test]
    fn same_seed_reproduces_the_same_sequence() {
        let cfg = FaultConfig::standard(0xDEAD_BEEF);
        let a = FaultPlan::new(cfg);
        let b = FaultPlan::new(cfg);
        let seq_a: Vec<bool> = (0..5_000)
            .map(|_| a.should_fault(FaultSite::Lane))
            .collect();
        let seq_b: Vec<bool> = (0..5_000)
            .map(|_| b.should_fault(FaultSite::Lane))
            .collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.injected(FaultSite::Lane), b.injected(FaultSite::Lane));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(FaultConfig::standard(1));
        let b = FaultPlan::new(FaultConfig::standard(2));
        let seq_a: Vec<bool> = (0..5_000)
            .map(|_| a.should_fault(FaultSite::Lane))
            .collect();
        let seq_b: Vec<bool> = (0..5_000)
            .map(|_| b.should_fault(FaultSite::Lane))
            .collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let p = FaultPlan::new(FaultConfig {
            seed: 99,
            alloc_failure_rate: 0.5,
            pcie_error_rate: 0.5,
            lane_abort_rate: 0.5,
        });
        let alloc: Vec<bool> = (0..2_000)
            .map(|_| p.should_fault(FaultSite::Alloc))
            .collect();
        let pcie: Vec<bool> = (0..2_000)
            .map(|_| p.should_fault(FaultSite::Pcie))
            .collect();
        assert_ne!(alloc, pcie, "sites must not share a stream");
    }

    #[test]
    fn injection_rate_tracks_configured_rate() {
        let p = FaultPlan::new(FaultConfig {
            seed: 7,
            alloc_failure_rate: 0.25,
            pcie_error_rate: 0.0,
            lane_abort_rate: 0.0,
        });
        let n = 100_000u64;
        for _ in 0..n {
            p.should_fault(FaultSite::Alloc);
        }
        let rate = p.injected(FaultSite::Alloc) as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed rate {rate}");
        assert_eq!(p.draws(FaultSite::Alloc), n);
    }
}
