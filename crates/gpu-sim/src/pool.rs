//! Shared persistent worker pool.
//!
//! Before this module existed, every parallel kernel launch spawned and
//! joined its own set of OS threads (`crossbeam::scope` in the executor,
//! again in the Phoenix baseline, again in the stress tests). A SEPO run
//! issues thousands of small launches — one per driver chunk per iteration
//! — so thread creation dominated launch overhead. The pool replaces that
//! with one lazily-started, process-wide set of parked workers:
//!
//! * [`WorkerPool::global`] starts the workers on first use (count from
//!   `SEPO_WORKERS`, default `available_parallelism - 1` so the submitting
//!   thread is the remaining participant) and never again — see
//!   [`startup_count`] / [`threads_spawned`], which tests use to pin the
//!   "exactly one start-up, no per-launch spawns" property.
//! * A *job* ([`Work`]) is a range of units claimed in chunks from a shared
//!   cursor. The **submitting thread always participates** — it claims
//!   chunks like any worker — so progress never depends on pool capacity
//!   and nested submissions (a job whose units themselves submit jobs)
//!   cannot deadlock.
//! * Each participant gets a distinct *slot* index, which callers use for
//!   lock-free per-participant state (e.g. the executor's metric shards).
//! * A panic inside a unit is caught, the job is still drained to
//!   completion (remaining units run; the pool is never poisoned), and the
//!   first payload is handed back to the submitter, which re-raises it —
//!   the same observable behaviour as the old scoped-thread code.
//! * [`scope`] layers structured task-parallelism on top: `FnOnce` tasks
//!   that may borrow from the caller's stack, executed by pool workers,
//!   with the caller helping and then blocking until all complete. The
//!   bench harness uses it to run independent (app × dataset) cells
//!   concurrently while each cell stays internally deterministic.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit-range computation executable by pool participants.
///
/// `run_units` is called with disjoint sub-ranges of `0..n_units` (the
/// ranges partition the whole job across participants) and the caller's
/// participant `slot`, unique within the job while that participant works.
pub trait Work: Sync {
    fn run_units(&self, units: Range<usize>, slot: usize);
}

/// Erased, lifetime-less pointer to the submitter's [`Work`] object.
///
/// Safety contract: the submitter keeps the object alive and un-moved until
/// the job completes (it blocks in [`WorkerPool::run`] until every claimed
/// unit has finished), and no participant dereferences the pointer after
/// claiming past the end of the unit range.
#[derive(Clone, Copy)]
struct WorkPtr(*const (dyn Work + 'static));

unsafe impl Send for WorkPtr {}
unsafe impl Sync for WorkPtr {}

/// First panic payload captured from a job's units.
struct JobStatus {
    completed: bool,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

/// One submitted job: claim cursor, completion latch, panic slot.
struct JobCore {
    work: WorkPtr,
    n_units: usize,
    chunk: usize,
    /// Next unclaimed unit.
    next: AtomicUsize,
    /// Units finished (run or skipped by a panicking chunk).
    done: AtomicUsize,
    /// Next participant slot to hand out.
    slots: AtomicUsize,
    /// Slots available; participants beyond this do not join.
    max_slots: usize,
    status: Mutex<JobStatus>,
    completed_cv: Condvar,
}

impl JobCore {
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n_units
    }

    /// Claim and run chunks until the cursor passes the end. Returns
    /// whether this thread got a slot (i.e. was eligible to work).
    fn participate(&self) -> bool {
        let slot = self.slots.fetch_add(1, Ordering::Relaxed);
        if slot >= self.max_slots {
            return false;
        }
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n_units {
                return true;
            }
            let end = (start + self.chunk).min(self.n_units);
            let work = unsafe { &*self.work.0 };
            let outcome =
                std::panic::catch_unwind(AssertUnwindSafe(|| work.run_units(start..end, slot)));
            if let Err(payload) = outcome {
                let mut status = self.status.lock().unwrap();
                status.panic.get_or_insert(payload);
            }
            self.finish_units(end - start);
        }
    }

    /// Credit `n` finished units; the last one trips the completion latch.
    ///
    /// The `Release`/`Acquire` pair on `done` makes every participant's
    /// writes (kernel effects, per-slot shards) visible to whichever thread
    /// observes completion, and the mutex hand-off extends that to the
    /// waiting submitter.
    fn finish_units(&self, n: usize) {
        if self.done.fetch_add(n, Ordering::AcqRel) + n == self.n_units {
            let mut status = self.status.lock().unwrap();
            status.completed = true;
            self.completed_cv.notify_all();
        }
    }

    /// Block until all units finished; surface the first panic payload.
    fn wait(&self) -> Result<(), Box<dyn Any + Send + 'static>> {
        let mut status = self.status.lock().unwrap();
        while !status.completed {
            status = self.completed_cv.wait(status).unwrap();
        }
        match status.panic.take() {
            Some(payload) => Err(payload),
            None => Ok(()),
        }
    }
}

/// Queue shared between submitters and workers.
struct PoolShared {
    queue: Mutex<VecDeque<Arc<JobCore>>>,
    work_ready: Condvar,
}

impl PoolShared {
    /// Worker side: block until a job with unclaimed units is available,
    /// pruning exhausted entries while scanning.
    fn next_job(&self) -> Arc<JobCore> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            queue.retain(|j| !j.exhausted());
            if let Some(job) = queue.iter().find(|j| !j.exhausted()) {
                return Arc::clone(job);
            }
            queue = self.work_ready.wait(queue).unwrap();
        }
    }

    fn submit(&self, job: Arc<JobCore>) {
        let mut queue = self.queue.lock().unwrap();
        queue.retain(|j| !j.exhausted());
        queue.push_back(job);
        drop(queue);
        self.work_ready.notify_all();
    }
}

/// Times a pool has been started process-wide (1 after first parallel use).
static STARTUPS: AtomicUsize = AtomicUsize::new(0);
/// Worker threads ever spawned process-wide.
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of pool start-ups; tests assert it stays at 1.
pub fn startup_count() -> usize {
    STARTUPS.load(Ordering::Relaxed)
}

/// Process-wide count of worker threads ever spawned; tests assert it does
/// not grow with launch count.
pub fn threads_spawned() -> usize {
    THREADS_SPAWNED.load(Ordering::Relaxed)
}

/// The persistent worker pool. One global instance serves the whole
/// process; see the module docs.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// The process-wide pool, started on first call.
    ///
    /// Thread count: `SEPO_WORKERS` if set (a value of 0 keeps the pool
    /// empty — every job runs entirely on its submitting thread), otherwise
    /// `available_parallelism() - 1`, the submitter being the +1.
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(|| {
            let workers = match std::env::var("SEPO_WORKERS") {
                Ok(v) => v
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("SEPO_WORKERS must be a number, got {v:?}")),
                Err(_) => std::thread::available_parallelism()
                    .map(|n| n.get().saturating_sub(1))
                    .unwrap_or(3)
                    .max(1),
            };
            WorkerPool::start(workers)
        })
    }

    /// Start a pool with `workers` parked threads (0 = submitter-only).
    fn start(workers: usize) -> WorkerPool {
        STARTUPS.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("sepo-pool-{i}"))
                .spawn(move || loop {
                    let job = shared.next_job();
                    job.participate();
                })
                .expect("failed to spawn pool worker");
        }
        WorkerPool { shared, workers }
    }

    /// Pool worker threads (not counting submitting threads).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maximum participants a job can have: every worker plus the
    /// submitter. Size per-slot state with this.
    pub fn max_participants(&self) -> usize {
        self.workers + 1
    }

    /// Run `work` over `0..n_units` in chunks of `chunk`, with at most
    /// `max_slots` participants, blocking until every unit has finished.
    ///
    /// The calling thread participates. A panic from any unit is re-raised
    /// here after the job drains; the pool itself is unaffected. `max_slots`
    /// is clamped to [`Self::max_participants`] (callers size per-slot state
    /// with whichever bound they pass).
    pub fn run(
        &self,
        n_units: usize,
        chunk: usize,
        max_slots: usize,
        work: &(dyn Work + '_),
    ) -> Result<(), Box<dyn Any + Send + 'static>> {
        if n_units == 0 {
            return Ok(());
        }
        let chunk = chunk.max(1);
        let max_slots = max_slots.clamp(1, self.max_participants());
        // Fast path: nothing to share — run inline, zero synchronization.
        if max_slots == 1 || n_units <= chunk {
            return std::panic::catch_unwind(AssertUnwindSafe(|| work.run_units(0..n_units, 0)));
        }
        // Erase the borrow: `job.wait()` below keeps `work` alive past the
        // last dereference (see `WorkPtr`).
        let work_static: *const (dyn Work + 'static) =
            unsafe { std::mem::transmute(work as *const (dyn Work + '_)) };
        let job = Arc::new(JobCore {
            work: WorkPtr(work_static),
            n_units,
            chunk,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            slots: AtomicUsize::new(0),
            max_slots,
            status: Mutex::new(JobStatus {
                completed: false,
                panic: None,
            }),
            completed_cv: Condvar::new(),
        });
        self.shared.submit(Arc::clone(&job));
        job.participate();
        job.wait()
    }
}

/// A single `FnOnce` task adapted to [`Work`] (one unit).
struct ScopeTask {
    f: Mutex<Option<Box<dyn FnOnce() + Send + 'static>>>,
}

impl Work for ScopeTask {
    fn run_units(&self, _units: Range<usize>, _slot: usize) {
        let f = self.f.lock().unwrap().take().expect("scope task ran twice");
        f();
    }
}

/// Handle for spawning borrowed tasks onto the pool; see [`scope`].
pub struct Scope<'env> {
    pool: &'static WorkerPool,
    /// Keeps each task's closure and job alive until [`Scope::wait_all`].
    jobs: Mutex<Vec<(Arc<ScopeTask>, Arc<JobCore>)>>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Submit `f` to the pool. It may borrow from the enclosing [`scope`]
    /// call's environment; it starts as soon as a worker (or the caller, at
    /// scope exit) picks it up.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // Lifetime erasure, made sound by the scope guard: wait_all runs
        // (even on panic) before 'env ends.
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        let task = Arc::new(ScopeTask {
            f: Mutex::new(Some(boxed)),
        });
        let task_ptr: *const ScopeTask = Arc::as_ptr(&task);
        let work_static: *const (dyn Work + 'static) = task_ptr;
        let job = Arc::new(JobCore {
            work: WorkPtr(work_static),
            n_units: 1,
            chunk: 1,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            slots: AtomicUsize::new(0),
            max_slots: 1,
            status: Mutex::new(JobStatus {
                completed: false,
                panic: None,
            }),
            completed_cv: Condvar::new(),
        });
        self.pool.shared.submit(Arc::clone(&job));
        self.jobs.lock().unwrap().push((task, job));
    }

    /// Help run unstarted tasks, then block until every task finished.
    /// Returns the first panic payload, if any.
    fn wait_all(&self) -> Option<Box<dyn Any + Send + 'static>> {
        let mut first_panic = None;
        loop {
            // New tasks may be spawned by tasks; drain until stable.
            let batch: Vec<_> = std::mem::take(&mut *self.jobs.lock().unwrap());
            if batch.is_empty() {
                return first_panic;
            }
            for (_task, job) in &batch {
                // Claim it ourselves if no worker has; then wait.
                job.participate();
                if let Err(payload) = job.wait() {
                    first_panic.get_or_insert(payload);
                }
            }
        }
    }
}

/// Runs `wait_all` even when the scope body panics, so borrowed tasks can
/// never outlive their borrows.
struct ScopeGuard<'s, 'env>(&'s Scope<'env>);

impl Drop for ScopeGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.wait_all();
    }
}

/// Structured task parallelism on the shared pool, mirroring
/// `std::thread::scope`: tasks may borrow from the caller, the call blocks
/// until all tasks finish, and a task panic is re-raised at the end.
///
/// Unlike spawning scoped threads, tasks run on the persistent workers —
/// no threads are created — and the caller lends a hand, so it works (as
/// pure inline execution) even with an empty pool.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let s = Scope {
        pool: WorkerPool::global(),
        jobs: Mutex::new(Vec::new()),
        _env: std::marker::PhantomData,
    };
    let result = {
        let guard = ScopeGuard(&s);
        let result = f(&s);
        std::mem::forget(guard); // success path: wait explicitly below
        result
    };
    if let Some(payload) = s.wait_all() {
        std::panic::resume_unwind(payload);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Private pools for tests that need a known worker count without
    /// touching the global one.
    fn pool(workers: usize) -> WorkerPool {
        WorkerPool::start(workers)
    }

    struct CountUnits {
        hits: Vec<AtomicU64>,
        slots_seen: Mutex<Vec<usize>>,
    }

    impl Work for CountUnits {
        fn run_units(&self, units: Range<usize>, slot: usize) {
            self.slots_seen.lock().unwrap().push(slot);
            for u in units {
                self.hits[u].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn count_work(n: usize) -> CountUnits {
        CountUnits {
            hits: (0..n).map(|_| AtomicU64::new(0)).collect(),
            slots_seen: Mutex::new(Vec::new()),
        }
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let p = pool(3);
        for &(n, chunk) in &[(1usize, 1usize), (97, 4), (1000, 7), (64, 64), (10, 100)] {
            let work = count_work(n);
            p.run(n, chunk, p.max_participants(), &work).unwrap();
            assert!(
                work.hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n={n} chunk={chunk}"
            );
        }
    }

    #[test]
    fn slots_stay_within_bound() {
        let p = pool(3);
        let work = count_work(500);
        p.run(500, 1, p.max_participants(), &work).unwrap();
        let slots = work.slots_seen.lock().unwrap();
        assert!(slots.iter().all(|&s| s < p.max_participants()));
    }

    #[test]
    fn zero_workers_runs_inline() {
        let p = pool(0);
        let work = count_work(100);
        let caller = std::thread::current().id();
        struct OnCaller<'a>(&'a CountUnits, std::thread::ThreadId);
        impl Work for OnCaller<'_> {
            fn run_units(&self, units: Range<usize>, slot: usize) {
                assert_eq!(std::thread::current().id(), self.1);
                self.0.run_units(units, slot);
            }
        }
        p.run(100, 8, p.max_participants(), &OnCaller(&work, caller))
            .unwrap();
        assert!(work.hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let p = pool(2);
        struct Bomb;
        impl Work for Bomb {
            fn run_units(&self, units: Range<usize>, _slot: usize) {
                if units.contains(&13) {
                    panic!("unit 13 exploded");
                }
            }
        }
        let err = p.run(64, 1, p.max_participants(), &Bomb).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "unit 13 exploded");
        // The same pool keeps working afterwards.
        let work = count_work(200);
        p.run(200, 4, p.max_participants(), &work).unwrap();
        assert!(work.hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn many_jobs_reuse_the_same_threads() {
        // Thread-count stability is asserted against the global pool in
        // tests/pool.rs (unit tests here create private pools concurrently,
        // so the process-wide spawn counter is not stable). This covers the
        // reuse correctness: 150 launches through one pool, all exact.
        let p = pool(2);
        for round in 0..150 {
            let n = 50 + round % 13;
            let work = count_work(n);
            p.run(n, 3, p.max_participants(), &work).unwrap();
            assert!(work.hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let p = std::sync::Arc::new(pool(3));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..20 {
                        let work = count_work(300);
                        p.run(300, 8, p.max_participants(), &work).unwrap();
                        assert!(work.hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
                    }
                });
            }
        });
    }

    #[test]
    fn scope_runs_borrowed_tasks() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total = AtomicU64::new(0);
        scope(|s| {
            for chunk in data.chunks(3) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn scope_propagates_task_panic() {
        let r = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| {});
                s.spawn(|| panic!("task died"));
                s.spawn(|| {});
            });
        });
        let err = r.unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task died");
        // The global pool still works.
        let total = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..8 {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let total = AtomicU64::new(0);
        scope(|outer| {
            for _ in 0..4 {
                let total = &total;
                outer.spawn(move || {
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn nested_job_submission_does_not_deadlock() {
        // Units of an outer job submit inner jobs to the same pool; the
        // submitter-participates rule keeps everything moving even when
        // all workers are stuck inside outer units.
        let p = std::sync::Arc::new(pool(2));
        struct Outer {
            pool: std::sync::Arc<WorkerPool>,
            total: AtomicU64,
        }
        impl Work for Outer {
            fn run_units(&self, units: Range<usize>, _slot: usize) {
                for _ in units {
                    let inner = AtomicU64::new(0);
                    struct Inner<'a>(&'a AtomicU64);
                    impl Work for Inner<'_> {
                        fn run_units(&self, units: Range<usize>, _slot: usize) {
                            self.0.fetch_add(units.len() as u64, Ordering::Relaxed);
                        }
                    }
                    self.pool
                        .run(32, 4, self.pool.max_participants(), &Inner(&inner))
                        .unwrap();
                    self.total
                        .fetch_add(inner.load(Ordering::Relaxed), Ordering::Relaxed);
                }
            }
        }
        let outer = Outer {
            pool: std::sync::Arc::clone(&p),
            total: AtomicU64::new(0),
        };
        p.run(8, 1, p.max_participants(), &outer).unwrap();
        assert_eq!(outer.total.load(Ordering::Relaxed), 8 * 32);
    }
}
