//! Cost-charging abstraction.
//!
//! The hash table and allocator run identically inside simulated-GPU
//! kernels and inside CPU baselines; what differs is where their event
//! charges go. [`Charge`] abstracts the sink: a kernel lane batches charges
//! warp-locally ([`crate::executor::LaneCtx`] implements it), while
//! [`MetricsCharge`] forwards straight to a [`Metrics`] sink for host-side
//! (baseline) execution.

use crate::metrics::Metrics;

/// Sink for simulated-cost events emitted by shared data structures.
pub trait Charge {
    /// Charge `units` of scalar compute work.
    fn compute(&mut self, units: u64);
    /// Charge `bytes` of irregular memory traffic.
    fn device_bytes(&mut self, bytes: u64);
    /// Record `hops` hash-chain link traversals.
    fn chain_hops(&mut self, hops: u64);
    /// Charge `bytes` of on-chip shared-memory traffic (warp-combiner
    /// probes and slot updates). Orders of magnitude cheaper than
    /// `device_bytes`; default no-op so plain sinks ignore it.
    fn smem_bytes(&mut self, _bytes: u64) {}
    /// Record emits absorbed by a warp combiner (no table touch).
    fn combiner_hits(&mut self, _n: u64) {}
    /// Record combiner slots flushed into the table (one device atomic
    /// per distinct buffered key).
    fn combiner_flushes(&mut self, _n: u64) {}
    /// Record combiner slots evicted early because the buffer was full.
    fn combiner_overflows(&mut self, _n: u64) {}
    /// Record lost bucket-head CAS races (publish retries).
    fn head_cas_retries(&mut self, _n: u64) {}
}

/// Forwarding impl so `&mut dyn Charge` (e.g. the sink a warp-scratch
/// `finish` hook receives) satisfies `C: Charge` bounds on generic methods.
impl<C: Charge + ?Sized> Charge for &mut C {
    #[inline]
    fn compute(&mut self, units: u64) {
        (**self).compute(units);
    }

    #[inline]
    fn device_bytes(&mut self, bytes: u64) {
        (**self).device_bytes(bytes);
    }

    #[inline]
    fn chain_hops(&mut self, hops: u64) {
        (**self).chain_hops(hops);
    }

    #[inline]
    fn smem_bytes(&mut self, bytes: u64) {
        (**self).smem_bytes(bytes);
    }

    #[inline]
    fn combiner_hits(&mut self, n: u64) {
        (**self).combiner_hits(n);
    }

    #[inline]
    fn combiner_flushes(&mut self, n: u64) {
        (**self).combiner_flushes(n);
    }

    #[inline]
    fn combiner_overflows(&mut self, n: u64) {
        (**self).combiner_overflows(n);
    }

    #[inline]
    fn head_cas_retries(&mut self, n: u64) {
        (**self).head_cas_retries(n);
    }
}

/// Direct-to-metrics sink used outside kernels (CPU baselines, tests).
#[derive(Debug)]
pub struct MetricsCharge<'a>(pub &'a Metrics);

impl Charge for MetricsCharge<'_> {
    #[inline]
    fn compute(&mut self, units: u64) {
        self.0.add_compute_units(units);
    }

    #[inline]
    fn device_bytes(&mut self, bytes: u64) {
        self.0.add_device_bytes(bytes);
    }

    #[inline]
    fn chain_hops(&mut self, hops: u64) {
        self.0.add_chain_hops(hops);
        self.0.add_device_bytes(hops * 16); // a hop reads one dual link
    }

    #[inline]
    fn smem_bytes(&mut self, bytes: u64) {
        self.0.add_smem_bytes(bytes);
    }

    #[inline]
    fn combiner_hits(&mut self, n: u64) {
        self.0.add_combiner_hits(n);
    }

    #[inline]
    fn combiner_flushes(&mut self, n: u64) {
        self.0.add_combiner_flushes(n);
    }

    #[inline]
    fn combiner_overflows(&mut self, n: u64) {
        self.0.add_combiner_overflows(n);
    }

    #[inline]
    fn head_cas_retries(&mut self, n: u64) {
        self.0.add_head_cas_retries(n);
    }
}

/// Sink that discards all charges (pure-correctness tests).
#[derive(Debug, Default)]
pub struct NoCharge;

impl Charge for NoCharge {
    #[inline]
    fn compute(&mut self, _: u64) {}
    #[inline]
    fn device_bytes(&mut self, _: u64) {}
    #[inline]
    fn chain_hops(&mut self, _: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_charge_forwards() {
        let m = Metrics::new();
        let mut c = MetricsCharge(&m);
        c.compute(10);
        c.device_bytes(64);
        c.chain_hops(3);
        c.smem_bytes(32);
        c.combiner_hits(5);
        c.combiner_flushes(2);
        c.combiner_overflows(1);
        c.head_cas_retries(4);
        let s = m.snapshot();
        assert_eq!(s.compute_units, 10);
        assert_eq!(s.chain_hops, 3);
        assert_eq!(s.device_bytes, 64 + 48);
        assert_eq!(s.smem_bytes, 32);
        assert_eq!(s.combiner_hits, 5);
        assert_eq!(s.combiner_flushes, 2);
        assert_eq!(s.combiner_overflows, 1);
        assert_eq!(s.head_cas_retries, 4);
    }

    #[test]
    fn no_charge_discards() {
        let mut c = NoCharge;
        c.compute(u64::MAX);
        c.device_bytes(u64::MAX);
        c.chain_hops(u64::MAX);
        c.smem_bytes(u64::MAX);
        c.combiner_hits(u64::MAX);
        c.combiner_flushes(u64::MAX);
        c.combiner_overflows(u64::MAX);
        c.head_cas_retries(u64::MAX);
    }
}
