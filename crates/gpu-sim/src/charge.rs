//! Cost-charging abstraction.
//!
//! The hash table and allocator run identically inside simulated-GPU
//! kernels and inside CPU baselines; what differs is where their event
//! charges go. [`Charge`] abstracts the sink: a kernel lane batches charges
//! warp-locally ([`crate::executor::LaneCtx`] implements it), while
//! [`MetricsCharge`] forwards straight to a [`Metrics`] sink for host-side
//! (baseline) execution.

use crate::metrics::Metrics;

/// Sink for simulated-cost events emitted by shared data structures.
pub trait Charge {
    /// Charge `units` of scalar compute work.
    fn compute(&mut self, units: u64);
    /// Charge `bytes` of irregular memory traffic.
    fn device_bytes(&mut self, bytes: u64);
    /// Record `hops` hash-chain link traversals.
    fn chain_hops(&mut self, hops: u64);
}

/// Direct-to-metrics sink used outside kernels (CPU baselines, tests).
#[derive(Debug)]
pub struct MetricsCharge<'a>(pub &'a Metrics);

impl Charge for MetricsCharge<'_> {
    #[inline]
    fn compute(&mut self, units: u64) {
        self.0.add_compute_units(units);
    }

    #[inline]
    fn device_bytes(&mut self, bytes: u64) {
        self.0.add_device_bytes(bytes);
    }

    #[inline]
    fn chain_hops(&mut self, hops: u64) {
        self.0.add_chain_hops(hops);
        self.0.add_device_bytes(hops * 16); // a hop reads one dual link
    }
}

/// Sink that discards all charges (pure-correctness tests).
#[derive(Debug, Default)]
pub struct NoCharge;

impl Charge for NoCharge {
    #[inline]
    fn compute(&mut self, _: u64) {}
    #[inline]
    fn device_bytes(&mut self, _: u64) {}
    #[inline]
    fn chain_hops(&mut self, _: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_charge_forwards() {
        let m = Metrics::new();
        let mut c = MetricsCharge(&m);
        c.compute(10);
        c.device_bytes(64);
        c.chain_hops(3);
        let s = m.snapshot();
        assert_eq!(s.compute_units, 10);
        assert_eq!(s.chain_hops, 3);
        assert_eq!(s.device_bytes, 64 + 48);
    }

    #[test]
    fn no_charge_discards() {
        let mut c = NoCharge;
        c.compute(u64::MAX);
        c.device_bytes(u64::MAX);
        c.chain_hops(u64::MAX);
    }
}
