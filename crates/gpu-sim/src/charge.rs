//! Cost-charging abstraction.
//!
//! The hash table and allocator run identically inside simulated-GPU
//! kernels and inside CPU baselines; what differs is where their event
//! charges go. [`Charge`] abstracts the sink: a kernel lane batches charges
//! warp-locally ([`crate::executor::LaneCtx`] implements it), while
//! [`MetricsCharge`] forwards straight to a [`Metrics`] sink for host-side
//! (baseline) execution.

use crate::metrics::Metrics;
use crate::shadow::{AccessKind, ShadowAddr};

/// Sink for simulated-cost events emitted by shared data structures.
pub trait Charge {
    /// Charge `units` of scalar compute work.
    fn compute(&mut self, units: u64);
    /// Charge `bytes` of irregular memory traffic.
    fn device_bytes(&mut self, bytes: u64);
    /// Record `hops` hash-chain link traversals.
    fn chain_hops(&mut self, hops: u64);
    /// Charge `bytes` of on-chip shared-memory traffic (warp-combiner
    /// probes and slot updates). Orders of magnitude cheaper than
    /// `device_bytes`; default no-op so plain sinks ignore it.
    fn smem_bytes(&mut self, _bytes: u64) {}
    /// Record emits absorbed by a warp combiner (no table touch).
    fn combiner_hits(&mut self, _n: u64) {}
    /// Record combiner slots flushed into the table (one device atomic
    /// per distinct buffered key).
    fn combiner_flushes(&mut self, _n: u64) {}
    /// Record combiner slots evicted early because the buffer was full.
    fn combiner_overflows(&mut self, _n: u64) {}
    /// Record lost bucket-head CAS races (publish retries).
    fn head_cas_retries(&mut self, _n: u64) {}
    /// Declare one access to the simulated device's logical address space
    /// for the shadow-memory sanitizer ([`crate::shadow`]). Charges no
    /// simulated cost; default no-op so plain sinks — and therefore all
    /// baseline runs — pay nothing.
    fn access(&mut self, _addr: ShadowAddr, _kind: AccessKind) {}
}

/// Forwarding impl so `&mut dyn Charge` (e.g. the sink a warp-scratch
/// `finish` hook receives) satisfies `C: Charge` bounds on generic methods.
impl<C: Charge + ?Sized> Charge for &mut C {
    #[inline]
    fn compute(&mut self, units: u64) {
        (**self).compute(units);
    }

    #[inline]
    fn device_bytes(&mut self, bytes: u64) {
        (**self).device_bytes(bytes);
    }

    #[inline]
    fn chain_hops(&mut self, hops: u64) {
        (**self).chain_hops(hops);
    }

    #[inline]
    fn smem_bytes(&mut self, bytes: u64) {
        (**self).smem_bytes(bytes);
    }

    #[inline]
    fn combiner_hits(&mut self, n: u64) {
        (**self).combiner_hits(n);
    }

    #[inline]
    fn combiner_flushes(&mut self, n: u64) {
        (**self).combiner_flushes(n);
    }

    #[inline]
    fn combiner_overflows(&mut self, n: u64) {
        (**self).combiner_overflows(n);
    }

    #[inline]
    fn head_cas_retries(&mut self, n: u64) {
        (**self).head_cas_retries(n);
    }

    #[inline]
    fn access(&mut self, addr: ShadowAddr, kind: AccessKind) {
        (**self).access(addr, kind);
    }
}

/// Direct-to-metrics sink used outside kernels (CPU baselines, tests).
#[derive(Debug)]
pub struct MetricsCharge<'a>(pub &'a Metrics);

impl Charge for MetricsCharge<'_> {
    #[inline]
    fn compute(&mut self, units: u64) {
        self.0.add_compute_units(units);
    }

    #[inline]
    fn device_bytes(&mut self, bytes: u64) {
        self.0.add_device_bytes(bytes);
    }

    #[inline]
    fn chain_hops(&mut self, hops: u64) {
        self.0.add_chain_hops(hops);
        self.0.add_device_bytes(hops * 16); // a hop reads one dual link
    }

    #[inline]
    fn smem_bytes(&mut self, bytes: u64) {
        self.0.add_smem_bytes(bytes);
    }

    #[inline]
    fn combiner_hits(&mut self, n: u64) {
        self.0.add_combiner_hits(n);
    }

    #[inline]
    fn combiner_flushes(&mut self, n: u64) {
        self.0.add_combiner_flushes(n);
    }

    #[inline]
    fn combiner_overflows(&mut self, n: u64) {
        self.0.add_combiner_overflows(n);
    }

    #[inline]
    fn head_cas_retries(&mut self, n: u64) {
        self.0.add_head_cas_retries(n);
    }
}

/// Sink that discards all charges (pure-correctness tests).
#[derive(Debug, Default)]
pub struct NoCharge;

impl Charge for NoCharge {
    #[inline]
    fn compute(&mut self, _: u64) {}
    #[inline]
    fn device_bytes(&mut self, _: u64) {}
    #[inline]
    fn chain_hops(&mut self, _: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_charge_forwards() {
        let m = Metrics::new();
        let mut c = MetricsCharge(&m);
        c.compute(10);
        c.device_bytes(64);
        c.chain_hops(3);
        c.smem_bytes(32);
        c.combiner_hits(5);
        c.combiner_flushes(2);
        c.combiner_overflows(1);
        c.head_cas_retries(4);
        let s = m.snapshot();
        assert_eq!(s.compute_units, 10);
        assert_eq!(s.chain_hops, 3);
        assert_eq!(s.device_bytes, 64 + 48);
        assert_eq!(s.smem_bytes, 32);
        assert_eq!(s.combiner_hits, 5);
        assert_eq!(s.combiner_flushes, 2);
        assert_eq!(s.combiner_overflows, 1);
        assert_eq!(s.head_cas_retries, 4);
    }

    #[test]
    fn no_charge_discards() {
        let mut c = NoCharge;
        c.compute(u64::MAX);
        c.device_bytes(u64::MAX);
        c.chain_hops(u64::MAX);
        c.smem_bytes(u64::MAX);
        c.combiner_hits(u64::MAX);
        c.combiner_flushes(u64::MAX);
        c.combiner_overflows(u64::MAX);
        c.head_cas_retries(u64::MAX);
        c.access(ShadowAddr::BucketHead(0), AccessKind::Atomic);
    }

    /// Counting sink recording which trait methods were invoked on it.
    #[derive(Default)]
    struct CountingSink {
        calls: Vec<&'static str>,
    }

    impl Charge for CountingSink {
        fn compute(&mut self, _: u64) {
            self.calls.push("compute");
        }
        fn device_bytes(&mut self, _: u64) {
            self.calls.push("device_bytes");
        }
        fn chain_hops(&mut self, _: u64) {
            self.calls.push("chain_hops");
        }
        fn smem_bytes(&mut self, _: u64) {
            self.calls.push("smem_bytes");
        }
        fn combiner_hits(&mut self, _: u64) {
            self.calls.push("combiner_hits");
        }
        fn combiner_flushes(&mut self, _: u64) {
            self.calls.push("combiner_flushes");
        }
        fn combiner_overflows(&mut self, _: u64) {
            self.calls.push("combiner_overflows");
        }
        fn head_cas_retries(&mut self, _: u64) {
            self.calls.push("head_cas_retries");
        }
        fn access(&mut self, _: ShadowAddr, _: AccessKind) {
            self.calls.push("access");
        }
    }

    /// Drive every trait method through a `C: Charge` bound — the shape
    /// generic table code uses.
    fn drive_all<C: Charge>(c: &mut C) {
        c.compute(1);
        c.device_bytes(1);
        c.chain_hops(1);
        c.smem_bytes(1);
        c.combiner_hits(1);
        c.combiner_flushes(1);
        c.combiner_overflows(1);
        c.head_cas_retries(1);
        c.access(ShadowAddr::BitmapWord(0), AccessKind::PlainRead);
    }

    /// Pins that the blanket `impl<C: Charge + ?Sized> Charge for &mut C`
    /// forwards *every* trait method — including the default-noop ones and
    /// `access`. A method missing from the blanket impl would fall back to
    /// its trait default and silently discard the call behind
    /// `&mut dyn Charge` (exactly how warp-scratch finish hooks charge), so
    /// a counting sink must observe all nine calls.
    #[test]
    fn blanket_mut_ref_impl_forwards_every_method() {
        const ALL: [&str; 9] = [
            "compute",
            "device_bytes",
            "chain_hops",
            "smem_bytes",
            "combiner_hits",
            "combiner_flushes",
            "combiner_overflows",
            "head_cas_retries",
            "access",
        ];
        // One level of &mut: the concrete-sink reference generic code takes.
        let mut sink = CountingSink::default();
        drive_all(&mut &mut sink);
        assert_eq!(sink.calls, ALL);

        // Through &mut dyn Charge — type-erased, then re-borrowed, the
        // scratch-hook path.
        let mut sink = CountingSink::default();
        {
            let dyn_sink: &mut dyn Charge = &mut sink;
            let mut reborrow = dyn_sink;
            drive_all(&mut reborrow);
        }
        assert_eq!(sink.calls, ALL);
    }
}
