//! Input data partitioning.
//!
//! "The application programmer is asked to provide an *input data
//! partitioner* function which partitions the input data into smaller
//! chunks, ready to be processed by the map functions" (§V). The
//! partitioner runs on the CPU; each chunk becomes one map task.

/// Record boundaries over a raw input blob: record `i` is
/// `bytes[offsets[i]..offsets[i+1]]`.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    pub offsets: Vec<usize>,
    total: usize,
}

impl Partition {
    /// Build from explicit record offsets over a blob of `total` bytes
    /// (e.g. boundaries a generator already knows).
    pub fn from_offsets(offsets: Vec<usize>, total: usize) -> Self {
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(offsets.last().is_none_or(|&o| o <= total));
        Partition { offsets, total }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Record `i` of `bytes`.
    pub fn record<'a>(&self, bytes: &'a [u8], i: usize) -> &'a [u8] {
        let start = self.offsets[i];
        let end = self.offsets.get(i + 1).copied().unwrap_or(self.total);
        &bytes[start..end]
    }

    /// Size of record `i`.
    pub fn record_bytes(&self, i: usize) -> u64 {
        let start = self.offsets[i];
        let end = self.offsets.get(i + 1).copied().unwrap_or(self.total);
        (end - start) as u64
    }
}

/// Partition at newline boundaries: one record per line (including its
/// terminator). The standard partitioner for log-structured inputs.
pub fn by_lines(bytes: &[u8]) -> Partition {
    let mut offsets = Vec::new();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            offsets.push(start);
            start = i + 1;
        }
    }
    if start < bytes.len() {
        offsets.push(start); // trailing record without newline
    }
    Partition {
        offsets,
        total: bytes.len(),
    }
}

/// Partition into fixed-size chunks aligned down to the previous newline,
/// so records are never split (chunk-oriented map functions, e.g. Word
/// Count over multi-line spans).
pub fn by_chunks(bytes: &[u8], chunk_size: usize) -> Partition {
    let chunk_size = chunk_size.max(1);
    let mut offsets = Vec::new();
    let mut start = 0usize;
    while start < bytes.len() {
        offsets.push(start);
        let mut end = (start + chunk_size).min(bytes.len());
        if end < bytes.len() {
            // Extend to the end of the current line.
            while end < bytes.len() && bytes[end - 1] != b'\n' {
                end += 1;
            }
        }
        start = end;
    }
    Partition {
        offsets,
        total: bytes.len(),
    }
}

/// Partition at explicit separators (e.g. one HTML document per record,
/// separated by a sentinel). The separator is kept with the preceding
/// record.
pub fn by_separator(bytes: &[u8], sep: &[u8]) -> Partition {
    assert!(!sep.is_empty());
    let mut offsets = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i + sep.len() <= bytes.len() {
        if &bytes[i..i + sep.len()] == sep {
            offsets.push(start);
            start = i + sep.len();
            i = start;
        } else {
            i += 1;
        }
    }
    if start < bytes.len() {
        offsets.push(start);
    }
    Partition {
        offsets,
        total: bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_split_correctly() {
        let data = b"one\ntwo\nthree\n";
        let p = by_lines(data);
        assert_eq!(p.len(), 3);
        assert_eq!(p.record(data, 0), b"one\n");
        assert_eq!(p.record(data, 1), b"two\n");
        assert_eq!(p.record(data, 2), b"three\n");
        assert_eq!(p.record_bytes(2), 6);
    }

    #[test]
    fn trailing_unterminated_line_is_a_record() {
        let data = b"a\nb";
        let p = by_lines(data);
        assert_eq!(p.len(), 2);
        assert_eq!(p.record(data, 1), b"b");
    }

    #[test]
    fn empty_input_has_no_records() {
        assert!(by_lines(b"").is_empty());
        assert!(by_chunks(b"", 16).is_empty());
    }

    #[test]
    fn chunks_respect_line_boundaries() {
        let data = b"aaaa\nbbbb\ncccc\ndddd\n";
        let p = by_chunks(data, 6);
        assert!(p.len() >= 2);
        // Every chunk but possibly the last ends on a newline; chunks cover
        // the input exactly.
        let mut reassembled = Vec::new();
        for i in 0..p.len() {
            let rec = p.record(data, i);
            if i + 1 < p.len() {
                assert_eq!(*rec.last().unwrap(), b'\n');
            }
            reassembled.extend_from_slice(rec);
        }
        assert_eq!(reassembled, data);
    }

    #[test]
    fn separator_partitioning() {
        let data = b"doc1<!>doc2<!>doc3";
        let p = by_separator(data, b"<!>");
        assert_eq!(p.len(), 3);
        assert_eq!(p.record(data, 0), b"doc1<!>");
        assert_eq!(p.record(data, 2), b"doc3");
    }
}
