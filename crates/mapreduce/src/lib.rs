//! # sepo-mapreduce — a GPU MapReduce runtime on the SEPO hash table
//!
//! Reproduction of §V of the SEPO paper: a simple MapReduce runtime that
//! uses BigKernel-style input streaming, the SEPO hash table as its KV
//! store, and a scheduler for the map and reduce phases. Because the KV
//! store can exceed device memory, this is "the first GPU-based MapReduce
//! runtime capable of processing data larger than what GPU memory can
//! hold".
//!
//! * [`partitioner`] — the application-provided *input data partitioner*:
//!   line, chunk, and separator partitioners over raw input blobs.
//! * [`runtime::Mode`] — `MAP_REDUCE` (embedded reduce via a combining
//!   callback) or `MAP_GROUP` (multi-valued grouping without reduction).
//! * [`runtime::Mapper`] + [`emitter::Emitter`] — the map-side API; the
//!   emitter makes re-execution after SEPO postponement idempotent by
//!   numbering pairs and resuming at the saved progress.

pub mod emitter;
pub mod partitioner;
pub mod runtime;

pub use emitter::Emitter;
pub use partitioner::Partition;
pub use runtime::{run_job, JobConfig, JobOutput, Mapper, Mode};
