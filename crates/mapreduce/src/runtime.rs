//! The MapReduce runtime (§V).
//!
//! "We developed a MapReduce runtime that uses BigKernel as the input
//! memory manager, our hash table as the KV store, and a few more lines of
//! code to schedule map and reduce phases." The runtime:
//!
//! * takes the application's *input data partitioner* output (record
//!   boundaries over the raw input),
//! * streams records to the device in chunks (modelled by the SEPO
//!   driver's per-chunk accounting, priced with the pipeline model),
//! * invokes one *map* instance per record, whose emitted KV pairs go into
//!   the SEPO hash table,
//! * in **MAP_REDUCE** mode uses the *combining* organization with the
//!   application's reduce/combine callback, embedding the reduce phase in
//!   the map phase ("this saves memory and improves performance" \[12\]);
//! * in **MAP_GROUP** mode uses the *multi-valued* organization to group
//!   (without reducing) all values per key.
//!
//! Because the KV store is the SEPO table, the runtime processes inputs
//! whose KV volume exceeds device memory — "the first GPU-based MapReduce
//! runtime capable of processing data larger than what GPU memory can
//! hold" (§V).

use crate::emitter::Emitter;
use crate::partitioner::Partition;
use gpu_sim::executor::Executor;
use gpu_sim::metrics::Metrics;
use sepo_core::config::{Combiner, Organization, TableConfig};
use sepo_core::sepo::{DriverConfig, SepoDriver, SepoOutcome};
use sepo_core::table::SepoTable;
use std::sync::Arc;

/// Runtime mode (§V): with or without a reduce phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `<key, value>` output via an embedded reduce/combine callback.
    MapReduce(Combiner),
    /// `<key, values>` output: group without reducing.
    MapGroup,
}

impl Mode {
    fn organization(self) -> Organization {
        match self {
            Mode::MapReduce(c) => Organization::Combining(c),
            Mode::MapGroup => Organization::MultiValued,
        }
    }
}

/// A MapReduce application: one `map` invocation per input record.
///
/// The map function re-emits every pair on every attempt; the emitter makes
/// re-execution after postponement idempotent. The `reduce` is the
/// combiner carried by [`Mode::MapReduce`].
pub trait Mapper: Sync {
    /// Emit the KV pairs of `record` through `out`.
    fn map(&self, record: &[u8], out: &mut Emitter<'_, '_, '_>);
}

impl<F> Mapper for F
where
    F: Fn(&[u8], &mut Emitter<'_, '_, '_>) + Sync,
{
    fn map(&self, record: &[u8], out: &mut Emitter<'_, '_, '_>) {
        self(record, out)
    }
}

impl Mapper for &dyn Mapper {
    fn map(&self, record: &[u8], out: &mut Emitter<'_, '_, '_>) {
        (**self).map(record, out)
    }
}

/// Job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    pub mode: Mode,
    /// Hash-table shape.
    pub table: TableConfig,
    /// Device heap bytes available to the KV store.
    pub heap_bytes: u64,
    /// SEPO driver knobs.
    pub driver: DriverConfig,
}

impl JobConfig {
    /// Defaults for `mode` with a heap of `heap_bytes`; the table shape is
    /// tuned to the heap size.
    pub fn new(mode: Mode, heap_bytes: u64) -> Self {
        JobConfig {
            mode,
            table: TableConfig::tuned(mode.organization(), heap_bytes),
            heap_bytes,
            driver: DriverConfig::default(),
        }
    }

    /// Pin the KV store's heap in CPU memory (the Fig. 7 alternative).
    pub fn with_remote_heap(mut self, remote: bool) -> Self {
        self.table.remote_heap = remote;
        self
    }

    pub fn with_table(mut self, table: TableConfig) -> Self {
        assert_eq!(
            std::mem::discriminant(&table.organization),
            std::mem::discriminant(&self.mode.organization()),
            "table organization must match the job mode"
        );
        self.table = table;
        self
    }
}

/// A finished job: the SEPO outcome plus the finalized table for result
/// collection.
pub struct JobOutput {
    pub outcome: SepoOutcome,
    pub table: SepoTable,
}

impl JobOutput {
    /// MAP_REDUCE results.
    pub fn reduced(&self) -> Vec<(Vec<u8>, u64)> {
        self.table.collect_combining()
    }

    /// MAP_GROUP results.
    pub fn grouped(&self) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
        self.table.collect_multivalued()
    }
}

/// Run `mapper` over the partitioned `input` on `executor`.
pub fn run_job<M: Mapper>(
    input: &[u8],
    partition: &Partition,
    mapper: &M,
    cfg: JobConfig,
    executor: &Executor,
    metrics: Arc<Metrics>,
) -> JobOutput {
    let table = SepoTable::new(cfg.table.clone(), cfg.heap_bytes, metrics);
    let outcome = {
        let driver = SepoDriver::new(&table, executor).with_config(cfg.driver.clone());
        driver.run(
            partition.len(),
            |t| partition.record_bytes(t),
            |t, start, lane| {
                let record = partition.record(input, t);
                let mut emitter = Emitter::new(&table, lane, start);
                mapper.map(record, &mut emitter);
                emitter.finish()
            },
        )
    };
    JobOutput { outcome, table }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner;
    use gpu_sim::executor::ExecMode;
    use std::collections::HashMap;

    fn exec() -> (Executor, Arc<Metrics>) {
        let m = Arc::new(Metrics::new());
        (Executor::new(ExecMode::Deterministic, Arc::clone(&m)), m)
    }

    #[test]
    fn word_count_end_to_end() {
        let input = b"the cat sat\nthe cat ran\nthe end\n".to_vec();
        let partition = partitioner::by_lines(&input);
        let (e, m) = exec();
        let out = run_job(
            &input,
            &partition,
            &|record: &[u8], out: &mut Emitter<'_, '_, '_>| {
                for w in record.split(|&b| b == b' ' || b == b'\n') {
                    if !w.is_empty() && !out.emit_combining(w, 1) {
                        return;
                    }
                }
            },
            JobConfig::new(Mode::MapReduce(Combiner::Add), 64 * 1024),
            &e,
            m,
        );
        assert_eq!(out.outcome.n_iterations(), 1);
        let got: HashMap<Vec<u8>, u64> = out.reduced().into_iter().collect();
        assert_eq!(got[&b"the".to_vec()], 3);
        assert_eq!(got[&b"cat".to_vec()], 2);
        assert_eq!(got[&b"end".to_vec()], 1);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn map_group_end_to_end() {
        let input = b"x a\ny b\nx c\nx d\n".to_vec();
        let partition = partitioner::by_lines(&input);
        let (e, m) = exec();
        let out = run_job(
            &input,
            &partition,
            &|record: &[u8], out: &mut Emitter<'_, '_, '_>| {
                let rec = record.strip_suffix(b"\n").unwrap_or(record);
                let sp = rec.iter().position(|&b| b == b' ').unwrap();
                out.emit_grouped(&rec[..sp], &rec[sp + 1..]);
            },
            JobConfig::new(Mode::MapGroup, 64 * 1024),
            &e,
            m,
        );
        let mut got = out.grouped();
        got.sort();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, b"x");
        let mut xs = got[0].1.clone();
        xs.sort();
        assert_eq!(xs, vec![b"a".to_vec(), b"c".to_vec(), b"d".to_vec()]);
        assert_eq!(got[1].0, b"y");
    }

    #[test]
    fn larger_than_memory_job_iterates_and_stays_exact() {
        // KV volume far beyond the 4 KiB heap: the job must need several
        // SEPO iterations yet produce exact counts.
        let mut input = Vec::new();
        for i in 0..600 {
            input.extend_from_slice(format!("word-{:03} filler\n", i % 300).as_bytes());
        }
        let partition = partitioner::by_lines(&input);
        let (e, m) = exec();
        let cfg = JobConfig::new(Mode::MapReduce(Combiner::Add), 4 * 1024).with_table(
            TableConfig::new(Organization::Combining(Combiner::Add))
                .with_buckets(128)
                .with_buckets_per_group(32)
                .with_page_size(1024),
        );
        let out = run_job(
            &input,
            &partition,
            &|record: &[u8], out: &mut Emitter<'_, '_, '_>| {
                for w in record.split(|&b| b == b' ' || b == b'\n') {
                    if !w.is_empty() && !out.emit_combining(w, 1) {
                        return;
                    }
                }
            },
            cfg,
            &e,
            m,
        );
        assert!(out.outcome.n_iterations() > 1, "must exceed device memory");
        let got: HashMap<Vec<u8>, u64> = out.reduced().into_iter().collect();
        assert_eq!(got.len(), 301); // 300 word-### plus "filler"
        assert_eq!(got[&b"filler".to_vec()], 600);
        for i in 0..300 {
            assert_eq!(got[format!("word-{i:03}").as_bytes()], 2);
        }
    }

    #[test]
    #[should_panic(expected = "organization must match")]
    fn mismatched_table_organization_rejected() {
        let _ = JobConfig::new(Mode::MapGroup, 1024)
            .with_table(TableConfig::new(Organization::Combining(Combiner::Add)));
    }
}
