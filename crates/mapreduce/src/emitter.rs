//! The KV emitter handed to map functions.
//!
//! The emitter is the bridge between a map function and the SEPO hash
//! table: it numbers the pairs a task emits, *skips* pairs already stored
//! in a previous iteration (resuming at the saved progress), and records
//! the index of the first postponed pair so the task can resume exactly
//! there next iteration. Map functions simply emit every pair every time;
//! idempotence across SEPO iterations is the emitter's job.

use gpu_sim::executor::LaneCtx;
use sepo_core::combiner::WarpCombiner;
use sepo_core::hash::fnv1a;
use sepo_core::sepo::TaskResult;
use sepo_core::table::{InsertStatus, SepoTable};

/// Pair-emission state for one task execution.
pub struct Emitter<'a, 'l, 'w> {
    table: &'a SepoTable,
    lane: &'a mut LaneCtx<'w>,
    start_pair: u32,
    next_pair: u32,
    postponed_at: Option<u32>,
    _marker: std::marker::PhantomData<&'l ()>,
}

impl<'a, 'l, 'w> Emitter<'a, 'l, 'w> {
    /// An emitter resuming at `start_pair` (0 on a task's first attempt).
    pub fn new(table: &'a SepoTable, lane: &'a mut LaneCtx<'w>, start_pair: u32) -> Self {
        Emitter {
            table,
            lane,
            start_pair,
            next_pair: 0,
            postponed_at: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Emit a `<key, u64>` pair into a combining (MAP_REDUCE) table.
    /// Returns `false` once a pair has been postponed — the map function
    /// may stop early (later emits are ignored either way).
    ///
    /// The key is hashed exactly once here; the `u64` is threaded through
    /// the insert/find paths (and the warp combiner's slot probe, when the
    /// driver attached one) instead of re-running FNV-1a per layer.
    pub fn emit_combining(&mut self, key: &[u8], value: u64) -> bool {
        if !self.should_attempt() {
            return self.postponed_at.is_none();
        }
        let hash = fnv1a(key);
        // Sharded ownership filter, ahead of the warp combiner so a
        // foreign key never occupies a combiner slot: the owner shard's
        // replica of this task stores it (see `SepoTable` shard docs).
        if !self.table.config().owns_hash(hash) {
            return true;
        }
        // Route through the warp combiner when the launch installed one:
        // duplicate keys within the warp fold locally and flush at warp
        // retirement; first touches and postponements follow the direct
        // path bit for bit.
        let (scratch, mut warp_charge) = self.lane.scratch_parts();
        let status = match scratch.and_then(|s| s.downcast_mut::<WarpCombiner>()) {
            Some(wc) => wc.emit(self.table, key, hash, value, &mut warp_charge),
            None => self
                .table
                .insert_combining_hashed(key, hash, value, self.lane),
        };
        match status {
            InsertStatus::Success => true,
            InsertStatus::Postponed => {
                self.note_postponed();
                false
            }
        }
    }

    /// Emit a `<key, value>` pair into a multi-valued (MAP_GROUP) table.
    pub fn emit_grouped(&mut self, key: &[u8], value: &[u8]) -> bool {
        if !self.should_attempt() {
            return self.postponed_at.is_none();
        }
        match self
            .table
            .insert_multivalued_hashed(key, fnv1a(key), value, self.lane)
        {
            InsertStatus::Success => true,
            InsertStatus::Postponed => {
                self.note_postponed();
                false
            }
        }
    }

    /// Emit a `<key, value>` pair into a basic table.
    pub fn emit_basic(&mut self, key: &[u8], value: &[u8]) -> bool {
        if !self.should_attempt() {
            return self.postponed_at.is_none();
        }
        match self
            .table
            .insert_basic_hashed(key, fnv1a(key), value, self.lane)
        {
            InsertStatus::Success => true,
            InsertStatus::Postponed => {
                self.note_postponed();
                false
            }
        }
    }

    /// The lane, for charging map-side parse work.
    pub fn lane(&mut self) -> &mut LaneCtx<'w> {
        self.lane
    }

    /// Should the pair about to be emitted actually be attempted? Advances
    /// the pair counter; skips pairs below the resume point and everything
    /// after a postponement.
    fn should_attempt(&mut self) -> bool {
        let idx = self.next_pair;
        self.next_pair += 1;
        self.postponed_at.is_none() && idx >= self.start_pair
    }

    fn note_postponed(&mut self) {
        // next_pair was already advanced past the failing pair.
        self.postponed_at = Some(self.next_pair - 1);
    }

    /// Fold the emission record into the task's [`TaskResult`].
    pub fn finish(self) -> TaskResult {
        match self.postponed_at {
            None => TaskResult::Done,
            Some(p) => TaskResult::Postponed { next_pair: p },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::executor::{ExecMode, Executor};
    use gpu_sim::metrics::Metrics;
    use sepo_core::config::{Combiner, Organization, TableConfig};
    use std::sync::Arc;

    fn run_one_task(
        table: &SepoTable,
        start: u32,
        f: impl Fn(&mut Emitter<'_, '_, '_>) + Sync,
    ) -> TaskResult {
        let exec = Executor::new(ExecMode::Deterministic, Arc::clone(table.metrics()));
        let result = parking_lot::Mutex::new(None);
        exec.launch(1, |lane| {
            let mut e = Emitter::new(table, lane, start);
            f(&mut e);
            *result.lock() = Some(e.finish());
        });
        result.into_inner().unwrap()
    }

    fn combining_table(pages: usize) -> SepoTable {
        let cfg = TableConfig::new(Organization::Combining(Combiner::Add))
            .with_buckets(64)
            .with_buckets_per_group(16)
            .with_page_size(1024);
        SepoTable::new(cfg, (pages * 1024) as u64, Arc::new(Metrics::new()))
    }

    #[test]
    fn all_pairs_stored_reports_done() {
        let t = combining_table(16);
        let r = run_one_task(&t, 0, |e| {
            assert!(e.emit_combining(b"a", 1));
            assert!(e.emit_combining(b"b", 2));
        });
        assert_eq!(r, TaskResult::Done);
        t.finalize();
        assert_eq!(t.collect_combining().len(), 2);
    }

    #[test]
    fn postponement_reports_failing_pair_index() {
        let t = combining_table(1);
        let r = run_one_task(&t, 0, |e| {
            let mut i = 0u64;
            // Emit big keys until one postpones.
            loop {
                let key = format!("key-{i:04}-{}", "x".repeat(40));
                if !e.emit_combining(key.as_bytes(), 1) {
                    break;
                }
                i += 1;
                assert!(i < 1000, "heap never filled");
            }
        });
        match r {
            TaskResult::Postponed { next_pair } => assert!(next_pair > 0),
            TaskResult::Done => panic!("must postpone"),
        }
    }

    #[test]
    fn resume_skips_already_stored_pairs() {
        let t = combining_table(16);
        // First attempt stores pairs 0 and 1 (simulate postponement at 2 by
        // resuming from 2 manually).
        let r1 = run_one_task(&t, 0, |e| {
            e.emit_combining(b"p0", 1);
            e.emit_combining(b"p1", 1);
        });
        assert_eq!(r1, TaskResult::Done);
        // Re-run the same task resuming at pair 2: pairs 0 and 1 must be
        // skipped (no double count), pair 2 stored.
        let r2 = run_one_task(&t, 2, |e| {
            e.emit_combining(b"p0", 1);
            e.emit_combining(b"p1", 1);
            e.emit_combining(b"p2", 1);
        });
        assert_eq!(r2, TaskResult::Done);
        t.finalize();
        let got: std::collections::HashMap<Vec<u8>, u64> =
            t.collect_combining().into_iter().collect();
        assert_eq!(got[&b"p0".to_vec()], 1, "skipped pair must not recombine");
        assert_eq!(got[&b"p1".to_vec()], 1);
        assert_eq!(got[&b"p2".to_vec()], 1);
    }

    #[test]
    fn emits_after_postponement_are_ignored() {
        let t = combining_table(1);
        let r = run_one_task(&t, 0, |e| {
            let mut postponed = false;
            for i in 0..500 {
                let key = format!("key-{i:04}-{}", "y".repeat(40));
                if !e.emit_combining(key.as_bytes(), 1) {
                    postponed = true;
                    // Keep emitting; the emitter must ignore these.
                    e.emit_combining(b"late-key", 1);
                    break;
                }
            }
            assert!(postponed);
        });
        assert!(matches!(r, TaskResult::Postponed { .. }));
        t.finalize();
        let got = t.collect_combining();
        assert!(
            got.iter().all(|(k, _)| k != b"late-key"),
            "post-postponement emit leaked into the table"
        );
    }
}
