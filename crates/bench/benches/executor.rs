//! Launch-overhead and warp-claim micro-benchmarks for the simulated GPU
//! executor.
//!
//! Two questions, both on the hottest path in the repo (a SEPO run issues
//! one launch per driver chunk per iteration):
//!
//! 1. What does an empty-kernel launch cost across task counts, now that
//!    launches are handed to the persistent worker pool instead of
//!    spawning threads?
//! 2. What does chunked warp claiming buy over the old one-warp-per-
//!    `fetch_add` claim when participants contend on the cursor?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use gpu_sim::pool::{Work, WorkerPool};
use gpu_sim::spec::WARP_SIZE;
use std::hint::black_box;
use std::ops::Range;
use std::sync::Arc;

/// Empty-kernel launch overhead: 1 task to 100k tasks, both pool-facing
/// modes. At 1 task this is almost purely per-launch fixed cost.
fn bench_launch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("launch_overhead");
    for n_tasks in [1usize, 100, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n_tasks as u64));
        for (mode, label) in [
            (ExecMode::ParallelDeterministic, "parallel_deterministic"),
            (ExecMode::Parallel { workers: 0 }, "parallel"),
        ] {
            let exec = Executor::new(mode, Arc::new(Metrics::new()));
            group.bench_function(BenchmarkId::new(label, n_tasks), |b| {
                b.iter(|| {
                    exec.launch(black_box(n_tasks), |ctx| {
                        black_box(ctx.task());
                    })
                })
            });
        }
    }
    group.finish();
}

/// A job whose per-warp work is trivial, so the claim protocol dominates.
struct ClaimOnly;

impl Work for ClaimOnly {
    fn run_units(&self, units: Range<usize>, _slot: usize) {
        for u in units {
            black_box(u);
        }
    }
}

/// Warp-claim contention: the same unit count claimed one warp per
/// `fetch_add` (the executor's old protocol) vs in adaptive chunks
/// (`n_warps / (participants * 8)`), on the shared pool.
fn bench_warp_claim(c: &mut Criterion) {
    let mut group = c.benchmark_group("warp_claim");
    let pool = WorkerPool::global();
    let slots = pool.max_participants();
    let n_warps = 100_000 / WARP_SIZE;
    group.throughput(Throughput::Elements(n_warps as u64));
    group.bench_function("one_warp_per_fetch_add", |b| {
        b.iter(|| pool.run(n_warps, 1, slots, &ClaimOnly).unwrap())
    });
    group.bench_function("adaptive_chunks", |b| {
        let chunk = (n_warps / (slots * 8)).max(1);
        b.iter(|| pool.run(n_warps, chunk, slots, &ClaimOnly).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_launch_overhead, bench_warp_claim);
criterion_main!(benches);
