//! Real wall-clock end-to-end benchmark: Page View Count through the full
//! SEPO stack (driver, kernels, allocator, eviction, result collection),
//! with ample memory (single pass) and under pressure (multi-iteration) —
//! measuring the implementation's actual processing rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use sepo_apps::{pvc, AppConfig};
use sepo_datagen::weblog::{generate, WeblogConfig};
use std::sync::Arc;

fn bench_pvc(c: &mut Criterion) {
    let ds = generate(
        &WeblogConfig {
            target_bytes: 2 << 20,
            ..Default::default()
        },
        99,
    );
    let mut group = c.benchmark_group("pvc_end_to_end");
    group.throughput(Throughput::Bytes(ds.size_bytes()));
    // Heap sizes: ample (1 iteration) vs tight (several SEPO iterations).
    for (label, heap) in [("single-pass", 16u64 << 20), ("sepo-4x", 192 * 1024)] {
        group.bench_with_input(BenchmarkId::new("deterministic", label), &heap, |b, &h| {
            b.iter(|| {
                let metrics = Arc::new(Metrics::new());
                let exec = Executor::new(ExecMode::Deterministic, Arc::clone(&metrics));
                let run = pvc::run(&ds, &AppConfig::new(h), &exec);
                run.iterations()
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", label), &heap, |b, &h| {
            b.iter(|| {
                let metrics = Arc::new(Metrics::new());
                let exec = Executor::new(ExecMode::Parallel { workers: 0 }, Arc::clone(&metrics));
                let run = pvc::run(&ds, &AppConfig::new(h), &exec);
                run.iterations()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pvc
}
criterion_main!(benches);
