//! Real wall-clock micro-benchmarks of the SEPO hash table's operations
//! across the three bucket organizations. These measure the actual Rust
//! implementation (not the simulated GPU clock): insert and lookup
//! throughput, duplicate-heavy combining, and multi-threaded scaling.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use gpu_sim::metrics::Metrics;
use gpu_sim::NoCharge;
use sepo_core::{Combiner, Organization, SepoTable, TableConfig};
use std::sync::Arc;

fn table(org: Organization) -> SepoTable {
    let heap = 32 << 20;
    SepoTable::new(
        TableConfig::tuned(org, heap),
        heap,
        Arc::new(Metrics::new()),
    )
}

fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("key-{i:08}")).collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    let n = 100_000usize;
    group.throughput(Throughput::Elements(n as u64));
    let ks = keys(n);

    group.bench_function("combining/distinct", |b| {
        b.iter_batched(
            || table(Organization::Combining(Combiner::Add)),
            |t| {
                let mut ch = NoCharge;
                for k in &ks {
                    t.insert_combining(k.as_bytes(), 1, &mut ch);
                }
                t
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("combining/duplicate-heavy", |b| {
        // 100k inserts over 1k distinct keys: the combine-in-place path.
        b.iter_batched(
            || table(Organization::Combining(Combiner::Add)),
            |t| {
                let mut ch = NoCharge;
                for i in 0..n {
                    t.insert_combining(ks[i % 1_000].as_bytes(), 1, &mut ch);
                }
                t
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("basic", |b| {
        b.iter_batched(
            || table(Organization::Basic),
            |t| {
                let mut ch = NoCharge;
                for k in &ks {
                    t.insert_basic(k.as_bytes(), b"value-payload-16", &mut ch);
                }
                t
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("multivalued/grouping", |b| {
        // 100k values over 10k keys: append-to-chain path dominates.
        b.iter_batched(
            || table(Organization::MultiValued),
            |t| {
                let mut ch = NoCharge;
                for i in 0..n {
                    t.insert_multivalued(ks[i % 10_000].as_bytes(), b"doc-0001.html", &mut ch);
                }
                t
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let t = table(Organization::Combining(Combiner::Add));
    let ks = keys(100_000);
    let mut ch = NoCharge;
    for k in &ks {
        t.insert_combining(k.as_bytes(), 7, &mut ch);
    }
    let mut group = c.benchmark_group("lookup");
    group.throughput(Throughput::Elements(ks.len() as u64));
    group.bench_function("combining/hit", |b| {
        b.iter(|| {
            let mut ch = NoCharge;
            let mut acc = 0u64;
            for k in &ks {
                acc = acc.wrapping_add(t.lookup_combining(k.as_bytes(), &mut ch).unwrap());
            }
            acc
        })
    });
    group.bench_function("combining/miss", |b| {
        b.iter(|| {
            let mut ch = NoCharge;
            let mut misses = 0u64;
            for k in &ks {
                if t.lookup_combining(&k.as_bytes()[1..], &mut ch).is_none() {
                    misses += 1;
                }
            }
            misses
        })
    });
    group.finish();
}

fn bench_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_insert");
    let n = 200_000usize;
    let ks = keys(n);
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("combining", threads),
            &threads,
            |b, &nt| {
                b.iter_batched(
                    || Arc::new(table(Organization::Combining(Combiner::Add))),
                    |t| {
                        crossbeam::scope(|s| {
                            for w in 0..nt {
                                let t = Arc::clone(&t);
                                let ks = &ks;
                                s.spawn(move |_| {
                                    let mut ch = NoCharge;
                                    for i in (w..n).step_by(nt) {
                                        t.insert_combining(ks[i].as_bytes(), 1, &mut ch);
                                    }
                                });
                            }
                        })
                        .unwrap();
                        t
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert, bench_lookup, bench_threaded
}
criterion_main!(benches);
