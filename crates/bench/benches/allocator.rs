//! Real wall-clock micro-benchmarks of the page allocator: bump-allocation
//! throughput, group distribution under threads, and the page acquire /
//! release cycle that backs SEPO evictions.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use gpu_sim::metrics::Metrics;
use sepo_alloc::{GroupAllocator, Heap, PageClass, PageKind};
use std::sync::Arc;

fn heap(mb: usize) -> Arc<Heap> {
    Arc::new(Heap::new(
        (mb << 20) as u64,
        64 * 1024,
        Arc::new(Metrics::new()),
    ))
}

fn bench_bump(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_bump");
    let n = 100_000usize;
    group.throughput(Throughput::Elements(n as u64));
    for groups in [1usize, 16, 256] {
        group.bench_with_input(
            BenchmarkId::new("single-thread", groups),
            &groups,
            |b, &g| {
                b.iter_batched(
                    || GroupAllocator::new(heap(32), g, PageKind::Mixed),
                    |ga| {
                        for i in 0..n {
                            ga.alloc(i % g, PageClass::Primary, 48).unwrap();
                        }
                        ga
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

fn bench_bump_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_bump_threaded");
    let n = 200_000usize;
    for (threads, groups) in [(8usize, 1usize), (8, 256)] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("{threads}t"), groups),
            &groups,
            |b, &g| {
                b.iter_batched(
                    || Arc::new(GroupAllocator::new(heap(64), g, PageKind::Mixed)),
                    |ga| {
                        crossbeam::scope(|s| {
                            for w in 0..threads {
                                let ga = Arc::clone(&ga);
                                s.spawn(move |_| {
                                    for i in (w..n).step_by(threads) {
                                        let _ = ga.alloc(i % g, PageClass::Primary, 48);
                                    }
                                });
                            }
                        })
                        .unwrap();
                        ga
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

fn bench_page_cycle(c: &mut Criterion) {
    // The acquire→fill→evict→release cycle at the heart of SEPO iterations.
    let mut group = c.benchmark_group("page_cycle");
    let h = heap(16);
    group.throughput(Throughput::Elements(1));
    group.bench_function("acquire_fill_snapshot_release", |b| {
        b.iter(|| {
            let p = h.acquire_page(PageKind::Mixed).unwrap();
            while h.bump(p, 512).is_some() {}
            let data = h.page_data(p);
            h.release_page(p);
            data.len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bump, bench_bump_threaded, bench_page_cycle
}
criterion_main!(benches);
