//! Ablation B — the basic method's halt threshold (§IV-C).
//!
//! "The computation is allowed to continue until the requests from 50% of
//! the bucket groups are being postponed … We observed acceptable
//! performance with setting the threshold to 50%."
//!
//! Sweep the threshold on a basic-organization workload. A low threshold
//! halts eagerly: many short iterations, each paying the fixed eviction
//! and restart cost on a barely-used heap. A high threshold drags each
//! pass to the end of the input while most inserts postpone: wasted input
//! streaming and kernel time. The sweet spot sits in the middle.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use sepo_bench::report::fmt_bytes;
use sepo_bench::{device_heap, gpu_total_time, scale, system, Table};
use sepo_core::config::{Organization, TableConfig};
use sepo_core::sepo::{DriverConfig, SepoDriver, TaskResult};
use sepo_core::table::{InsertStatus, SepoTable};
use sepo_datagen::{weblog, Dataset};
use std::sync::Arc;

/// A basic-method workload: store every request line keyed by URL (no
/// grouping — e.g. building a raw request index).
fn run_basic(
    ds: &Dataset,
    heap: u64,
    threshold: f64,
) -> (sepo_core::SepoOutcome, SepoTable, Arc<Metrics>) {
    let metrics = Arc::new(Metrics::new());
    let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
    let cfg = TableConfig::tuned(Organization::Basic, heap).with_halt_threshold(threshold);
    let table = SepoTable::new(cfg, heap, Arc::clone(&metrics));
    let outcome = {
        let driver = SepoDriver::new(&table, &exec).with_config(DriverConfig {
            chunk_tasks: 2048,
            ..DriverConfig::default()
        });
        driver.run(
            ds.len(),
            |t| ds.record_bytes(t),
            |t, _start, lane| {
                use gpu_sim::Charge;
                let rec = ds.record(t);
                lane.compute(6 * rec.len() as u64);
                let Some(url) = weblog::parse_url(rec) else {
                    return TaskResult::Done;
                };
                match table.insert_basic(url, rec, lane) {
                    InsertStatus::Success => TaskResult::Done,
                    InsertStatus::Postponed => TaskResult::Postponed { next_pair: 0 },
                }
            },
        )
    };
    table.finalize();
    (outcome, table, metrics)
}

fn main() {
    let spec = system();
    let scale = scale();
    let heap = device_heap(&spec);
    // Basic method stores every record: the table is ~as large as the
    // input, so a dataset a few times the heap exercises the halt policy.
    let ds = weblog::generate(
        &weblog::WeblogConfig {
            target_bytes: heap * 3,
            ..Default::default()
        },
        2024,
    );

    let mut table = Table::new(
        "Ablation B (SS IV-C): basic-method halt threshold",
        &[
            "Threshold",
            "Iterations",
            "Early halts",
            "Re-streamed input",
            "Postponed inserts",
            "Total (sim)",
        ],
    );
    let mut json = Vec::new();
    for threshold in [0.05, 0.25, 0.5, 0.75, 1.0] {
        let (outcome, t, metrics) = run_basic(&ds, heap, threshold);
        let hist = t.full_contention_histogram();
        let timing = gpu_total_time(&outcome, &hist, &spec);
        let halts = outcome.iterations.iter().filter(|i| i.halted_early).count();
        let restreamed = outcome.total_input_bytes().saturating_sub(ds.size_bytes());
        let postponed = metrics.snapshot().alloc_postponed;
        table.row(vec![
            format!("{:.0}%", threshold * 100.0),
            timing.iterations.to_string(),
            halts.to_string(),
            fmt_bytes(restreamed),
            postponed.to_string(),
            timing.total.to_string(),
        ]);
        json.push(serde_json::json!({
            "threshold": threshold,
            "iterations": timing.iterations,
            "early_halts": halts,
            "restreamed_bytes": restreamed,
            "postponed": postponed,
            "total_seconds": timing.total.as_secs_f64(),
        }));
    }
    table.note(format!(
        "scale = 1/{scale}; basic-method web-log store, input = 3x heap ({})",
        fmt_bytes(ds.size_bytes())
    ));
    table.note("the paper runs with 50%: low thresholds churn iterations, high ones waste postponed passes");
    table.print();
    sepo_bench::write_json(
        "ablation_threshold",
        &serde_json::json!({ "scale": scale, "rows": json }),
    );
}
