//! Figure 7 — SEPO vs the pinned-CPU-memory hash table (§VI-D).
//!
//! Both variants are reported as speedup over the CPU multi-threaded
//! baseline, on the largest datasets (#4). The paper finds that the SEPO
//! table "still significantly outperforms the version that allocates the
//! heap in CPU pinned memory. Worse, in four out of seven applications, the
//! CPU pinned memory version … performs worse than the CPU-based
//! multi-threaded implementations" — because every hash-table access
//! becomes a small PCIe transaction.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use sepo_apps::{run_app, AppConfig};
use sepo_baselines::{run_cpu_app, run_phoenix, run_pinned};
use sepo_bench::report::{fmt_speedup, BarChart};
use sepo_bench::{
    cpu_total_time, device_heap, gpu_total_time, pinned_total_time, scale, system, Table,
};
use sepo_datagen::App;
use std::sync::Arc;

fn main() {
    let spec = system();
    let scale = scale();
    let heap = device_heap(&spec);
    let mut table = Table::new(
        "Figure 7: speedups compared to the pinned version (dataset #4)",
        &[
            "Application",
            "SEPO iters",
            "SEPO speedup",
            "Pinned speedup",
            "SEPO/pinned",
        ],
    );
    let mut json = Vec::new();
    let mut pinned_below_cpu = 0;
    let mut chart =
        BarChart::new("Figure 7 (rendered): speedup over the CPU baseline").with_reference(1.0);

    for app in App::ALL {
        let ds = app.generate(3, scale);
        // SEPO run.
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
        let run = run_app(app, &ds, &AppConfig::new(heap), &exec);
        let sepo_t = gpu_total_time(&run.outcome, &run.table.full_contention_histogram(), &spec);
        // Pinned-heap run.
        let pinned = run_pinned(app, &ds);
        let pinned_t =
            pinned_total_time(&pinned.snapshot, &pinned.contention, ds.size_bytes(), &spec);
        // CPU baseline.
        let cpu_t = if App::MAPREDUCE.contains(&app) {
            let p = run_phoenix(app, &ds);
            cpu_total_time(&p.snapshot, &p.contention, &spec)
        } else {
            let b = run_cpu_app(app, &ds);
            cpu_total_time(&b.snapshot, &b.contention, &spec)
        };
        let sepo_speedup = cpu_t.ratio(sepo_t.total);
        let pinned_speedup = cpu_t.ratio(pinned_t);
        if pinned_speedup < 1.0 {
            pinned_below_cpu += 1;
        }
        table.row(vec![
            app.name().to_string(),
            sepo_t.iterations.to_string(),
            fmt_speedup(sepo_speedup),
            fmt_speedup(pinned_speedup),
            fmt_speedup(pinned_t.ratio(sepo_t.total)),
        ]);
        chart.group(
            app.name(),
            vec![
                (
                    "SEPO".into(),
                    sepo_speedup,
                    format!("({} iter)", sepo_t.iterations),
                ),
                ("pinned".into(), pinned_speedup, String::new()),
            ],
        );
        json.push(serde_json::json!({
            "app": app.name(),
            "iterations": sepo_t.iterations,
            "sepo_seconds": sepo_t.total.as_secs_f64(),
            "pinned_seconds": pinned_t.as_secs_f64(),
            "cpu_seconds": cpu_t.as_secs_f64(),
            "sepo_speedup": sepo_speedup,
            "pinned_speedup": pinned_speedup,
        }));
    }
    table.note(format!(
        "scale = 1/{scale}; dataset #4 for every application"
    ));
    table.note(format!(
        "pinned version slower than the CPU baseline for {pinned_below_cpu}/7 applications \
         (paper: 4/7)"
    ));
    table.print();
    chart.print();
    sepo_bench::write_json(
        "figure7",
        &serde_json::json!({ "scale": scale, "pinned_below_cpu": pinned_below_cpu, "rows": json }),
    );
}
