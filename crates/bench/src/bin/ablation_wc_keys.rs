//! Ablation C — Word Count's distinct-key sensitivity (§VI-B).
//!
//! "Word Count suffers from lock contention when accessing buckets because
//! of the small number of distinct keys and large number of duplicate
//! keys … when we artificially increased the number of distinct keys in
//! the input dataset of Word Count (by adding random, meaningless words to
//! the input documents), performance quickly improved."
//!
//! Sweep the vocabulary size at a fixed input volume and report the
//! GPU-over-Phoenix++ speedup: larger vocabularies spread the combining
//! atomics over more buckets, dissolving the serialization.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use sepo_apps::{wordcount, AppConfig};
use sepo_baselines::run_phoenix;
use sepo_bench::report::fmt_speedup;
use sepo_bench::{cpu_total_time, device_heap, gpu_total_time, scale, system, Table};
use sepo_datagen::text::{generate, TextConfig};
use sepo_datagen::App;
use std::sync::Arc;

fn main() {
    let spec = system();
    let scale = scale();
    let heap = device_heap(&spec);
    let input_bytes = App::WordCount.dataset_bytes(1, scale); // dataset #2 volume

    let mut table = Table::new(
        "Ablation C (SS VI-B): Word Count distinct-key sensitivity",
        &[
            "Vocabulary",
            "GPU contention",
            "GPU (sim)",
            "Phoenix++ (sim)",
            "Speedup",
        ],
    );
    let mut json = Vec::new();
    for vocab in [500usize, 2_000, 8_000, 32_000, 128_000] {
        let ds = generate(
            &TextConfig {
                target_bytes: input_bytes,
                vocab_size: vocab,
                ..Default::default()
            },
            777,
        );
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
        let run = wordcount::run(&ds, &AppConfig::new(heap), &exec);
        let hist = run.table.full_contention_histogram();
        let gpu = gpu_total_time(&run.outcome, &hist, &spec);
        // Phoenix++ is nearly insensitive to the vocabulary (thread-local
        // maps) — the paper's implied control.
        let p = run_phoenix(App::WordCount, &ds);
        let cpu = cpu_total_time(&p.snapshot, &p.contention, &spec);
        let speedup = cpu.ratio(gpu.total);
        table.row(vec![
            vocab.to_string(),
            gpu.contention.to_string(),
            gpu.total.to_string(),
            cpu.to_string(),
            fmt_speedup(speedup),
        ]);
        json.push(serde_json::json!({
            "vocab": vocab,
            "gpu_contention_seconds": gpu.contention.as_secs_f64(),
            "gpu_seconds": gpu.total.as_secs_f64(),
            "cpu_seconds": cpu.as_secs_f64(),
            "speedup": speedup,
        }));
    }
    table.note(format!(
        "scale = 1/{scale}; fixed input volume (dataset #2), vocabulary swept"
    ));
    table.note("paper: 'performance quickly improved' as distinct keys were added");
    table.print();
    sepo_bench::write_json(
        "ablation_wc_keys",
        &serde_json::json!({ "scale": scale, "rows": json }),
    );
}
