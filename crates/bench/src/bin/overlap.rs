//! Async eviction/compute overlap bench: per-app simulated-time savings
//! from draining eviction DMA behind the next iteration's kernels.
//!
//! For each of the seven §VI applications this runs the same workload
//! twice — synchronous boundaries and the double-buffered eviction pipe
//! (`--evict-overlap`) — under the parallel-deterministic executor with
//! the cross-layer audit, the shadow sanitizer, and seeded transient
//! faults all on. The two runs must be **byte-identical** in results:
//! saved table image, per-iteration completion trajectory, and iteration
//! count. Only the simulated-time pricing may differ: the overlapped run
//! composes each iteration's pipelined upload/kernel segment with the
//! previous boundary's eviction DMA via the BigKernel makespan recurrence
//! instead of strictly alternating them.
//!
//! Writes `BENCH_overlap.json` (repo root and `results/`) recording, per
//! app, the serial and overlapped simulated totals and the saving, and
//! exits non-zero if any app's results diverge between the two modes.

use gpu_sim::spec::SystemSpec;
use gpu_sim::{FaultConfig, FaultPlan};
use sepo_bench::harness::{
    instrumented_run, require, standard_config, standard_executor, BenchRun, REGRESSION_SCALE,
};
use sepo_bench::{gpu_total_time, GpuTiming};
use sepo_datagen::{App, Dataset};

/// Records per app — small enough to run in CI, large enough that the
/// tight heap below forces several eviction boundaries per app.
const SCALE: u64 = REGRESSION_SCALE;
/// Device heap small enough that every app needs several iterations, so
/// every run has eviction DMA worth hiding.
const HEAP_BYTES: u64 = 48 << 10;
/// Tasks per kernel launch (several chunks per iteration at this scale).
const CHUNK_TASKS: usize = 512;
/// Seed for the standard transient fault mix (alloc failures, PCIe
/// errors, lane aborts) — the identity claim must hold under fire.
const FAULT_SEED: u64 = 0x00EE_71A9;

fn run_once(app: App, ds: &Dataset, spec: &SystemSpec, overlap: bool) -> (BenchRun, GpuTiming) {
    let exec = standard_executor(Some(FaultPlan::new(FaultConfig::standard(FAULT_SEED))));
    let cfg = standard_config(HEAP_BYTES, CHUNK_TASKS).with_evict_overlap(overlap);
    let bench = instrumented_run(app, ds, &cfg, &exec);
    let timing = gpu_total_time(
        &bench.run.outcome,
        &bench.run.table.contention_histogram(),
        spec,
    );
    (bench, timing)
}

fn main() {
    let spec = SystemSpec::scaled(SCALE);
    let mut rows = Vec::new();
    let mut failed = false;

    for app in App::ALL {
        let ds = app.generate(0, SCALE);
        let (serial, serial_t) = run_once(app, &ds, &spec, false);
        let (overlap, overlap_t) = run_once(app, &ds, &spec, true);

        let image_ok = require(
            app.name(),
            "overlapped table image identical",
            overlap.image == serial.image,
        );
        let traj_ok = require(
            app.name(),
            "overlapped trajectory identical",
            overlap.trajectory == serial.trajectory,
        );
        let iters_ok = require(
            app.name(),
            "overlapped iteration count identical",
            overlap.iterations() == serial.iterations(),
        );
        failed |= !(image_ok && traj_ok && iters_ok);

        let serial_secs = serial_t.total.as_secs_f64();
        let overlap_secs = overlap_t.total.as_secs_f64();
        let saved = serial_secs - overlap_secs;
        let saved_pct = 100.0 * saved / serial_secs.max(1e-12);
        let evicted_bytes = serial.run.outcome.total_evicted_bytes();
        println!(
            "{:>15}: {:>2} iterations, {:>9} B evicted, serial {:.6}s \
             -> overlapped {:.6}s ({saved_pct:.1}% saved)",
            app.name(),
            serial.iterations(),
            evicted_bytes,
            serial_secs,
            overlap_secs,
        );
        rows.push(serde_json::json!({
            "app": app.name(),
            "iterations": serial.iterations(),
            "evicted_bytes": evicted_bytes,
            "serial_seconds": serial_secs,
            "overlap_seconds": overlap_secs,
            "serial_transfer_seconds": serial_t.transfers.as_secs_f64(),
            "overlap_transfer_seconds": overlap_t.transfers.as_secs_f64(),
            "saved_seconds": saved,
            "saved_pct": saved_pct,
            "image_identical": image_ok,
            "trajectory_identical": traj_ok,
            "iterations_identical": iters_ok,
        }));
    }

    let report = serde_json::json!({
        "bench": "async eviction/compute overlap: serial vs pipelined boundary DMA",
        "scale": SCALE,
        "heap_bytes": HEAP_BYTES,
        "chunk_tasks": CHUNK_TASKS,
        "fault_seed": FAULT_SEED,
        "apps": rows,
        "all_identical": !failed,
    });
    sepo_bench::write_json_mirrored("BENCH_overlap", &report);
    println!("\nwrote BENCH_overlap.json");
    if failed {
        std::process::exit(1);
    }
}
