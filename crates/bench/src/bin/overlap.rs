//! Async eviction/compute overlap bench: per-app simulated-time savings
//! from draining eviction DMA behind the next iteration's kernels.
//!
//! For each of the seven §VI applications this runs the same workload
//! twice — synchronous boundaries and the double-buffered eviction pipe
//! (`--evict-overlap`) — under the parallel-deterministic executor with
//! the cross-layer audit, the shadow sanitizer, and seeded transient
//! faults all on. The two runs must be **byte-identical** in results:
//! saved table image, per-iteration completion trajectory, and iteration
//! count. Only the simulated-time pricing may differ: the overlapped run
//! composes each iteration's pipelined upload/kernel segment with the
//! previous boundary's eviction DMA via the BigKernel makespan recurrence
//! instead of strictly alternating them.
//!
//! Writes `BENCH_overlap.json` (repo root and `results/`) recording, per
//! app, the serial and overlapped simulated totals and the saving, and
//! exits non-zero if any app's results diverge between the two modes.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use gpu_sim::spec::SystemSpec;
use gpu_sim::{FaultConfig, FaultPlan, ShadowSanitizer};
use sepo_apps::{run_app, AppConfig};
use sepo_bench::gpu_total_time;
use sepo_datagen::{App, Dataset};
use std::sync::Arc;

/// Records per app — small enough to run in CI, large enough that the
/// tight heap below forces several eviction boundaries per app.
const SCALE: u64 = 16_384;
/// Device heap small enough that every app needs several iterations, so
/// every run has eviction DMA worth hiding.
const HEAP_BYTES: u64 = 48 << 10;
/// Tasks per kernel launch (several chunks per iteration at this scale).
const CHUNK_TASKS: usize = 512;
/// Seed for the standard transient fault mix (alloc failures, PCIe
/// errors, lane aborts) — the identity claim must hold under fire.
const FAULT_SEED: u64 = 0x00EE_71A9;

struct Run {
    image: Vec<u8>,
    trajectory: Vec<u64>,
    iterations: u32,
    total_secs: f64,
    transfer_secs: f64,
    evicted_bytes: u64,
}

fn run_once(app: App, ds: &Dataset, spec: &SystemSpec, overlap: bool) -> Run {
    let metrics = Arc::new(Metrics::new());
    let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics))
        .with_faults(Arc::new(FaultPlan::new(FaultConfig::standard(FAULT_SEED))))
        .with_shadow(Arc::new(ShadowSanitizer::new()));
    let cfg = AppConfig::new(HEAP_BYTES)
        .with_chunk_tasks(CHUNK_TASKS)
        .with_audit(true)
        .with_sanitize(true)
        .with_evict_overlap(overlap);
    let run = run_app(app, ds, &cfg, &exec);
    let timing = gpu_total_time(&run.outcome, &run.table.contention_histogram(), spec);
    let mut image = Vec::new();
    run.table.save(&mut image).expect("save table image");
    Run {
        image,
        trajectory: run
            .outcome
            .iterations
            .iter()
            .map(|i| i.tasks_completed)
            .collect(),
        iterations: run.iterations(),
        total_secs: timing.total.as_secs_f64(),
        transfer_secs: timing.transfers.as_secs_f64(),
        evicted_bytes: run.outcome.total_evicted_bytes(),
    }
}

fn main() {
    let spec = SystemSpec::scaled(SCALE);
    let mut rows = Vec::new();
    let mut failed = false;

    for app in App::ALL {
        let ds = app.generate(0, SCALE);
        let serial = run_once(app, &ds, &spec, false);
        let overlap = run_once(app, &ds, &spec, true);

        let image_ok = overlap.image == serial.image;
        let traj_ok = overlap.trajectory == serial.trajectory;
        let iters_ok = overlap.iterations == serial.iterations;
        if !image_ok {
            eprintln!("FAIL: {}: overlapped table image differs", app.name());
        }
        if !traj_ok {
            eprintln!(
                "FAIL: {}: trajectory differs (overlap {:?} vs serial {:?})",
                app.name(),
                overlap.trajectory,
                serial.trajectory
            );
        }
        if !iters_ok {
            eprintln!(
                "FAIL: {}: iteration count differs ({} vs {})",
                app.name(),
                overlap.iterations,
                serial.iterations
            );
        }
        failed |= !(image_ok && traj_ok && iters_ok);

        let saved = serial.total_secs - overlap.total_secs;
        let saved_pct = 100.0 * saved / serial.total_secs.max(1e-12);
        println!(
            "{:>15}: {:>2} iterations, {:>9} B evicted, serial {:.6}s \
             -> overlapped {:.6}s ({saved_pct:.1}% saved)",
            app.name(),
            serial.iterations,
            serial.evicted_bytes,
            serial.total_secs,
            overlap.total_secs,
        );
        rows.push(serde_json::json!({
            "app": app.name(),
            "iterations": serial.iterations,
            "evicted_bytes": serial.evicted_bytes,
            "serial_seconds": serial.total_secs,
            "overlap_seconds": overlap.total_secs,
            "serial_transfer_seconds": serial.transfer_secs,
            "overlap_transfer_seconds": overlap.transfer_secs,
            "saved_seconds": saved,
            "saved_pct": saved_pct,
            "image_identical": image_ok,
            "trajectory_identical": traj_ok,
            "iterations_identical": iters_ok,
        }));
    }

    let report = serde_json::json!({
        "bench": "async eviction/compute overlap: serial vs pipelined boundary DMA",
        "scale": SCALE,
        "heap_bytes": HEAP_BYTES,
        "chunk_tasks": CHUNK_TASKS,
        "fault_seed": FAULT_SEED,
        "apps": rows,
        "all_identical": !failed,
    });
    sepo_bench::write_json_mirrored("BENCH_overlap", &report);
    println!("\nwrote BENCH_overlap.json");
    if failed {
        std::process::exit(1);
    }
}
