//! Related-work comparison — Stadium hashing vs the SEPO table (§VII).
//!
//! "Unlike our solution, neither Stadium hashing nor Mega-KV handle
//! key-value pairs with duplicate keys even though they are common in Big
//! Data analytics applications. They both store pairs with duplicate keys
//! as if they are pairs with different keys."
//!
//! Quantifies that remark on the PVC workload: a Stadium-like table stores
//! one fixed-size pinned-CPU slot per *occurrence* and pays one small PCIe
//! transaction per insert and per verified lookup; the SEPO table combines
//! occurrences in device memory and ships a compact table once. Also shows
//! where Stadium legitimately shines — point lookups on distinct keys via
//! the device-resident fingerprint filter.

use gpu_sim::cost::GpuCostModel;
use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::{ContentionHistogram, Metrics};
use gpu_sim::pcie::PcieBus;
use sepo_apps::{pvc, AppConfig};
use sepo_baselines::stadium::{StadiumTable, SLOT_BYTES};
use sepo_bench::report::fmt_bytes;
use sepo_bench::{device_heap, gpu_total_time, scale, system, Table};
use sepo_datagen::weblog::parse_url;
use sepo_datagen::App;
use std::sync::Arc;

fn main() {
    let spec = system();
    let scale = scale();
    let ds = App::PageViewCount.generate(1, scale); // dataset #2
    let n_requests = ds.len();

    // --- SEPO side: combine on the fly, ship once. -----------------------
    let heap = device_heap(&spec);
    let metrics = Arc::new(Metrics::new());
    let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
    let run = pvc::run(&ds, &AppConfig::new(heap), &exec);
    let sepo_time = gpu_total_time(&run.outcome, &run.table.full_contention_histogram(), &spec);
    let (_, sepo_bytes) = run.table.host_footprint();
    let distinct = run.table.collect_combining().len();

    // --- Stadium side: one slot per occurrence. ---------------------------
    let st_metrics = Arc::new(Metrics::new());
    // Capacity sized for every occurrence at load factor 0.7 — the design
    // cannot know duplicates will collapse.
    let capacity = (n_requests as f64 / 0.7) as usize;
    let st = StadiumTable::new(capacity, Arc::clone(&st_metrics));
    let mut stored = 0u64;
    for rec in ds.records() {
        if let Some(url) = parse_url(rec) {
            if url.len() <= sepo_baselines::stadium::KEY_CAP && st.insert(url, 1).is_ok() {
                stored += 1;
            }
        }
    }
    // Price it: index probes at device rates + slot writes as small PCIe.
    let gpu = GpuCostModel::new(spec.device.clone());
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    let snap = st_metrics.snapshot();
    let st_kernel = gpu.kernel_time(
        &snap,
        &ContentionHistogram::from_counts(std::iter::empty::<u64>()),
    );
    let st_remote =
        bus.small_transactions_time(snap.pcie_small_transactions, snap.pcie_small_bytes, 96);
    let st_upload = bus.bulk_transfer_time(ds.size_bytes());
    let st_time = st_upload.max(st_kernel) + st_remote;

    let mut table = Table::new(
        "Related work (SS VII): Stadium-hashing-like table vs the SEPO table (PVC inserts)",
        &["", "SEPO table", "Stadium-like"],
    );
    table.row(vec![
        "items stored".into(),
        format!("{distinct} combined entries"),
        format!("{stored} slots (one per occurrence)"),
    ]);
    table.row(vec![
        "host memory".into(),
        fmt_bytes(sepo_bytes),
        fmt_bytes(st.host_bytes()),
    ]);
    table.row(vec![
        "device memory".into(),
        fmt_bytes(heap),
        format!("{} (fingerprint board)", fmt_bytes(st.device_bytes())),
    ]);
    table.row(vec![
        "small PCIe transactions".into(),
        "0 (bulk evictions only)".into(),
        snap.pcie_small_transactions.to_string(),
    ]);
    table.row(vec![
        "grouping / combining".into(),
        "on the fly".into(),
        "none (post-pass required)".into(),
    ]);
    table.row(vec![
        "sim time (insert phase)".into(),
        sepo_time.total.to_string(),
        st_time.to_string(),
    ]);
    table.note(format!(
        "scale = 1/{scale}; PVC dataset #2: {n_requests} requests over {distinct} distinct URLs"
    ));
    table.note(format!(
        "Stadium's fixed {SLOT_BYTES}-byte slots + per-occurrence storage cost {:.1}x the SEPO table's host bytes",
        st.host_bytes() as f64 / sepo_bytes.max(1) as f64
    ));
    table.print();
    sepo_bench::write_json(
        "related_stadium",
        &serde_json::json!({
            "scale": scale,
            "requests": n_requests,
            "distinct": distinct,
            "sepo_host_bytes": sepo_bytes,
            "stadium_host_bytes": st.host_bytes(),
            "stadium_small_transactions": snap.pcie_small_transactions,
            "sepo_seconds": sepo_time.total.as_secs_f64(),
            "stadium_seconds": st_time.as_secs_f64(),
        }),
    );
}
