//! Table I — input dataset sizes.
//!
//! Prints the paper-scale ladder alongside the scaled datasets the harness
//! actually generates (with record counts), confirming the generators hit
//! their targets.

use sepo_bench::report::fmt_bytes;
use sepo_bench::{scale, Table};
use sepo_datagen::App;

fn main() {
    let scale = scale();
    let mut table = Table::new(
        "Table I: input dataset sizes",
        &[
            "Application",
            "Dataset #1",
            "Dataset #2",
            "Dataset #3",
            "Dataset #4",
            "Generated (#1..#4, scaled)",
        ],
    );
    let mut json = Vec::new();
    for app in App::ALL {
        let paper = app.table1_mb();
        let mut generated = Vec::new();
        let mut gen_cells = Vec::new();
        for idx in 0..4 {
            let ds = app.generate(idx, scale);
            gen_cells.push(format!("{} ({} rec)", fmt_bytes(ds.size_bytes()), ds.len()));
            generated.push(serde_json::json!({
                "dataset": idx + 1,
                "bytes": ds.size_bytes(),
                "records": ds.len(),
            }));
        }
        table.row(vec![
            app.name().to_string(),
            format!("{:.1} GB", paper[0] as f64 / 1000.0),
            format!("{:.1} GB", paper[1] as f64 / 1000.0),
            format!("{:.1} GB", paper[2] as f64 / 1000.0),
            format!("{:.1} GB", paper[3] as f64 / 1000.0),
            gen_cells.join(", "),
        ]);
        json.push(serde_json::json!({
            "app": app.name(),
            "paper_mb": paper,
            "generated": generated,
        }));
    }
    table.note(format!(
        "scale = 1/{scale}: generated sizes are paper sizes / {scale}"
    ));
    table.print();
    sepo_bench::write_json(
        "table1",
        &serde_json::json!({ "scale": scale, "rows": json }),
    );
}
