//! Table II — speedup over MapCG (§VI-C).
//!
//! "We were able to compare the performance of MapCG with our own MapReduce
//! runtime only for the smallest input datasets … our hash table was,
//! effectively, not using the SEPO model of computation. Consequently, the
//! comparison with MapCG only evaluates the efficiency of the basic design
//! of our hash table, including dynamic memory allocation and
//! synchronization."
//!
//! Paper results: Word Count 1.05X, Patent Citation 2.42X, Geo Location
//! 2.55X — parity where both runtimes are bucket-contention bound, a >2x
//! win where MapCG's centralized allocator serializes every insert.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use sepo_apps::{run_app, AppConfig};
use sepo_baselines::run_mapcg;
use sepo_bench::report::{fmt_bytes, fmt_speedup};
use sepo_bench::timing::single_pass_gpu_time;
use sepo_bench::{device_heap, scale, system, Table};
use sepo_datagen::App;
use std::sync::Arc;

fn main() {
    let spec = system();
    let scale = scale();
    let heap = device_heap(&spec);
    let paper = [
        ("Word Count (MapReduce)", 1.05),
        ("Patent Citation (MapReduce)", 2.42),
        ("Geo Location (MapReduce)", 2.55),
    ];
    let mut table = Table::new(
        "Table II: speedups over MapCG",
        &[
            "Application",
            "Input",
            "Ours (sim)",
            "MapCG (sim)",
            "Speedup",
            "Paper",
        ],
    );
    let mut json = Vec::new();

    for app in App::MAPREDUCE {
        // Smallest dataset: both runtimes fit in device memory.
        let ds = app.generate(0, scale);
        // Our runtime.
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
        let run = run_app(app, &ds, &AppConfig::new(heap), &exec);
        assert_eq!(
            run.iterations(),
            1,
            "{}: Table II requires the in-memory regime",
            app.name()
        );
        // Same single-pass assembly for both runtimes (Table II's regime is
        // one pass for both; only the hash-table design differs).
        let out_bytes = run.table.host_footprint().1;
        let ours_metrics_hist = run.table.full_contention_histogram();
        let ours_kernel: gpu_sim::Snapshot =
            run.outcome
                .iterations
                .iter()
                .fold(gpu_sim::Snapshot::default(), |acc, i| {
                    // One iteration only (asserted above); take its kernel delta.
                    let _ = acc;
                    i.kernel
                });
        let ours_total = single_pass_gpu_time(
            &ours_kernel,
            &ours_metrics_hist,
            ds.size_bytes(),
            out_bytes,
            &spec,
        );
        // MapCG.
        let mc_metrics = Arc::new(Metrics::new());
        let mc_exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&mc_metrics));
        let (mapcg_cell, speedup_cell, mapcg_secs, speedup) =
            match run_mapcg(app, &ds, heap, &mc_exec) {
                Ok(mc) => {
                    let t = single_pass_gpu_time(
                        &mc.snapshot,
                        &mc.contention,
                        ds.size_bytes(),
                        mc.output_bytes,
                        &spec,
                    ) + mc.alloc_serial;
                    let s = t.ratio(ours_total);
                    (t.to_string(), fmt_speedup(s), t.as_secs_f64(), s)
                }
                Err(e) => (format!("FAILED: {e}"), "-".into(), f64::NAN, f64::NAN),
            };
        let paper_x = paper
            .iter()
            .find(|(n, _)| *n == app.name())
            .map(|&(_, x)| x)
            .unwrap_or(f64::NAN);
        table.row(vec![
            app.name().to_string(),
            fmt_bytes(ds.size_bytes()),
            ours_total.to_string(),
            mapcg_cell,
            speedup_cell,
            fmt_speedup(paper_x),
        ]);
        json.push(serde_json::json!({
            "app": app.name(),
            "input_bytes": ds.size_bytes(),
            "ours_seconds": ours_total.as_secs_f64(),
            "mapcg_seconds": mapcg_secs,
            "speedup": speedup,
            "paper_speedup": paper_x,
        }));
    }
    table.note(format!(
        "scale = 1/{scale}; smallest datasets (in-memory regime, SEPO inactive)"
    ));
    table.note(
        "MapCG modelled: in-memory-only KV store with a single centralized allocation pointer",
    );
    table.print();
    sepo_bench::write_json(
        "table2",
        &serde_json::json!({ "scale": scale, "rows": json }),
    );
}
