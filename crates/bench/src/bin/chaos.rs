//! Seeded chaos harness: kill every application mid-run, resume it from
//! the last iteration-boundary checkpoint, and prove the recovery left no
//! trace.
//!
//! For each of the seven §VI applications this runs an unkilled baseline
//! (parallel-deterministic executor, audit and sanitizer on) and then a
//! chaos run with hard device faults injected at elevated per-launch
//! rates and in-memory checkpointing enabled.
//! Seeds are swept until at least one hard fault actually strikes, so the
//! comparison always covers a real kill-and-resume. The recovered run must
//! match the baseline **byte for byte**: saved table image, per-iteration
//! completion trajectory, and the full metrics snapshot.
//!
//! Writes `BENCH_chaos.json` (repo root and `results/`) recording per-app
//! recovery counts, replayed iterations, checkpoint sizes, and wall-clock
//! overhead, and exits non-zero if any app's recovery is not invisible.

use gpu_sim::{FaultConfig, FaultPlan, HardFaultConfig};
use sepo_bench::harness::{
    instrumented_run, require, standard_config, standard_executor, BenchRun, REGRESSION_SCALE,
};
use sepo_core::CheckpointPolicy;
use sepo_datagen::{App, Dataset};

/// Records per app — the tests' forced multi-iteration scale.
const SCALE: u64 = REGRESSION_SCALE;
/// Device heap small enough that every app needs several iterations, so
/// kills land both before and after eviction boundaries.
const HEAP_BYTES: u64 = 96 << 10;
/// Tasks per kernel launch. The scaled datasets hold a few hundred to a
/// few thousand records, so the default chunk (8192) would mean one
/// launch — one kill-point — per iteration. Chunking small gives every
/// run dozens of kill-points spread across each iteration's interior.
const CHUNK_TASKS: usize = 32;
/// Per-launch hard-fault rates. Higher than `HardFaultConfig::standard`
/// (the CLI's long-haul mix) so these short runs reliably see several
/// kills per seed.
const DEVICE_LOSS_RATE: f64 = 0.05;
const POISONED_LAUNCH_RATE: f64 = 0.02;
/// Seeds tried per app before giving up on provoking a hard fault. At the
/// above per-launch rates a multi-chunk run is overwhelmingly likely to
/// be struck, so the sweep almost always stops at the first seed.
const MAX_SEED_TRIES: u64 = 20;
/// First chaos seed per app (successive tries increment from here).
const BASE_SEED: u64 = 0x5EED_C0DE;

/// One audited + sanitized run. `chaos_seed` arms hard faults (quiet
/// transient rates, elevated hard rates) plus in-memory checkpointing.
fn run_once(app: App, ds: &Dataset, chaos_seed: Option<u64>) -> BenchRun {
    let faults = chaos_seed.map(|seed| {
        FaultPlan::new(FaultConfig::quiet(seed)).with_hard(HardFaultConfig {
            seed,
            device_loss_rate: DEVICE_LOSS_RATE,
            poisoned_launch_rate: POISONED_LAUNCH_RATE,
        })
    });
    let exec = standard_executor(faults);
    let mut cfg = standard_config(HEAP_BYTES, CHUNK_TASKS);
    if chaos_seed.is_some() {
        cfg = cfg
            .with_checkpoint(CheckpointPolicy::Memory)
            .with_max_recoveries(10_000);
    }
    instrumented_run(app, ds, &cfg, &exec)
}

fn main() {
    let mut rows = Vec::new();
    let mut failed = false;
    let mut total_recoveries = 0u32;
    let mut total_replays = 0u32;

    for app in App::ALL {
        let ds = app.generate(0, SCALE);
        let baseline = run_once(app, &ds, None);

        // Sweep seeds until a hard fault actually kills the run at least
        // once; an unkilled chaos run would prove nothing.
        let mut chaos = None;
        let mut seed_tries = 0u64;
        for t in 0..MAX_SEED_TRIES {
            let seed = BASE_SEED + t;
            let run = run_once(app, &ds, Some(seed));
            seed_tries = t + 1;
            if run.run.outcome.recovery.recoveries >= 1 {
                chaos = Some((seed, run));
                break;
            }
        }
        let Some((seed, chaos)) = chaos else {
            eprintln!(
                "FAIL: {}: no hard fault struck in {MAX_SEED_TRIES} seeds",
                app.name()
            );
            failed = true;
            continue;
        };

        let image_ok = require(
            app.name(),
            "resumed table image identical",
            chaos.image == baseline.image,
        );
        let traj_ok = require(
            app.name(),
            "resumed trajectory identical",
            chaos.trajectory == baseline.trajectory,
        );
        let metrics_ok = require(
            app.name(),
            "resumed metrics snapshot identical",
            chaos.snapshot == baseline.snapshot,
        );
        failed |= !(image_ok && traj_ok && metrics_ok);

        let recovery = &chaos.run.outcome.recovery;
        let overhead = chaos.secs / baseline.secs.max(1e-9);
        total_recoveries += recovery.recoveries;
        total_replays += recovery.replayed_iterations;
        println!(
            "{:>15}: {:>2} recoveries, {:>2} iterations replayed ({} clean), \
             {:>3} checkpoints ({} B latest), {:.2}x wall vs unkilled, seed {seed:#x}",
            app.name(),
            recovery.recoveries,
            recovery.replayed_iterations,
            chaos.iterations(),
            recovery.checkpoints_taken,
            recovery.checkpoint_bytes,
            overhead,
        );
        rows.push(serde_json::json!({
            "app": app.name(),
            "seed": seed,
            "seed_tries": seed_tries,
            "iterations": chaos.iterations(),
            "recoveries": recovery.recoveries,
            "replayed_iterations": recovery.replayed_iterations,
            "checkpoints_taken": recovery.checkpoints_taken,
            "checkpoint_bytes": recovery.checkpoint_bytes,
            "image_bytes": baseline.image.len(),
            "baseline_secs": baseline.secs,
            "chaos_secs": chaos.secs,
            "wall_overhead": overhead,
            "image_identical": image_ok,
            "trajectory_identical": traj_ok,
            "metrics_identical": metrics_ok,
        }));
    }

    let report = serde_json::json!({
        "bench": "seeded chaos: hard-fault kill + checkpoint resume, all apps",
        "scale": SCALE,
        "heap_bytes": HEAP_BYTES,
        "chunk_tasks": CHUNK_TASKS,
        "device_loss_rate": DEVICE_LOSS_RATE,
        "poisoned_launch_rate": POISONED_LAUNCH_RATE,
        "checkpoint_policy": "memory, every iteration boundary",
        "apps": rows,
        "total_recoveries": total_recoveries,
        "total_replayed_iterations": total_replays,
        "all_identical": !failed,
    });
    sepo_bench::write_json_mirrored("BENCH_chaos", &report);
    println!(
        "\n{} recoveries across {} apps, {} iterations replayed; wrote BENCH_chaos.json",
        total_recoveries,
        App::ALL.len(),
        total_replays
    );
    if failed {
        std::process::exit(1);
    }
}
