//! Seeded chaos harness: kill every application mid-run, resume it from
//! the last iteration-boundary checkpoint, and prove the recovery left no
//! trace.
//!
//! For each of the seven §VI applications this runs an unkilled baseline
//! (parallel-deterministic executor, audit and sanitizer on) and then a
//! chaos run with hard device faults injected at elevated per-launch
//! rates and in-memory checkpointing enabled.
//! Seeds are swept until at least one hard fault actually strikes, so the
//! comparison always covers a real kill-and-resume. The recovered run must
//! match the baseline **byte for byte**: saved table image, per-iteration
//! completion trajectory, and the full metrics snapshot.
//!
//! Writes `BENCH_chaos.json` (repo root and `results/`) recording per-app
//! recovery counts, replayed iterations, checkpoint sizes, and wall-clock
//! overhead, and exits non-zero if any app's recovery is not invisible.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::{Metrics, Snapshot};
use gpu_sim::{FaultConfig, FaultPlan, HardFaultConfig, ShadowSanitizer};
use sepo_apps::{run_app, AppConfig};
use sepo_core::sepo::RecoveryStats;
use sepo_core::CheckpointPolicy;
use sepo_datagen::{App, Dataset};
use std::sync::Arc;
use std::time::Instant;

/// Records per app — the tests' forced multi-iteration scale.
const SCALE: u64 = 16_384;
/// Device heap small enough that every app needs several iterations, so
/// kills land both before and after eviction boundaries.
const HEAP_BYTES: u64 = 96 << 10;
/// Tasks per kernel launch. The scaled datasets hold a few hundred to a
/// few thousand records, so the default chunk (8192) would mean one
/// launch — one kill-point — per iteration. Chunking small gives every
/// run dozens of kill-points spread across each iteration's interior.
const CHUNK_TASKS: usize = 32;
/// Per-launch hard-fault rates. Higher than `HardFaultConfig::standard`
/// (the CLI's long-haul mix) so these short runs reliably see several
/// kills per seed.
const DEVICE_LOSS_RATE: f64 = 0.05;
const POISONED_LAUNCH_RATE: f64 = 0.02;
/// Seeds tried per app before giving up on provoking a hard fault. At the
/// above per-launch rates a multi-chunk run is overwhelmingly likely to
/// be struck, so the sweep almost always stops at the first seed.
const MAX_SEED_TRIES: u64 = 20;
/// First chaos seed per app (successive tries increment from here).
const BASE_SEED: u64 = 0x5EED_C0DE;

struct Run {
    image: Vec<u8>,
    trajectory: Vec<u64>,
    snapshot: Snapshot,
    recovery: RecoveryStats,
    iterations: u32,
    secs: f64,
}

/// One audited + sanitized run. `chaos_seed` arms hard faults (quiet
/// transient rates, elevated hard rates) plus in-memory checkpointing.
fn run_once(app: App, ds: &Dataset, chaos_seed: Option<u64>) -> Run {
    let metrics = Arc::new(Metrics::new());
    let mut exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
    if let Some(seed) = chaos_seed {
        let plan = FaultPlan::new(FaultConfig::quiet(seed)).with_hard(HardFaultConfig {
            seed,
            device_loss_rate: DEVICE_LOSS_RATE,
            poisoned_launch_rate: POISONED_LAUNCH_RATE,
        });
        exec = exec.with_faults(Arc::new(plan));
    }
    exec = exec.with_shadow(Arc::new(ShadowSanitizer::new()));
    let mut cfg = AppConfig::new(HEAP_BYTES)
        .with_chunk_tasks(CHUNK_TASKS)
        .with_audit(true)
        .with_sanitize(true);
    if chaos_seed.is_some() {
        cfg = cfg
            .with_checkpoint(CheckpointPolicy::Memory)
            .with_max_recoveries(10_000);
    }
    let start = Instant::now();
    let run = run_app(app, ds, &cfg, &exec);
    let secs = start.elapsed().as_secs_f64();
    let mut image = Vec::new();
    run.table.save(&mut image).expect("save table image");
    Run {
        image,
        trajectory: run
            .outcome
            .iterations
            .iter()
            .map(|i| i.tasks_completed)
            .collect(),
        snapshot: metrics.snapshot(),
        recovery: run.outcome.recovery,
        iterations: run.iterations(),
        secs,
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut failed = false;
    let mut total_recoveries = 0u32;
    let mut total_replays = 0u32;

    for app in App::ALL {
        let ds = app.generate(0, SCALE);
        let baseline = run_once(app, &ds, None);

        // Sweep seeds until a hard fault actually kills the run at least
        // once; an unkilled chaos run would prove nothing.
        let mut chaos = None;
        let mut seed_tries = 0u64;
        for t in 0..MAX_SEED_TRIES {
            let seed = BASE_SEED + t;
            let run = run_once(app, &ds, Some(seed));
            seed_tries = t + 1;
            if run.recovery.recoveries >= 1 {
                chaos = Some((seed, run));
                break;
            }
        }
        let Some((seed, chaos)) = chaos else {
            eprintln!(
                "FAIL: {}: no hard fault struck in {MAX_SEED_TRIES} seeds",
                app.name()
            );
            failed = true;
            continue;
        };

        let image_ok = chaos.image == baseline.image;
        let traj_ok = chaos.trajectory == baseline.trajectory;
        let metrics_ok = chaos.snapshot == baseline.snapshot;
        if !image_ok {
            eprintln!("FAIL: {}: resumed table image differs", app.name());
        }
        if !traj_ok {
            eprintln!(
                "FAIL: {}: trajectory differs (chaos {:?} vs baseline {:?})",
                app.name(),
                chaos.trajectory,
                baseline.trajectory
            );
        }
        if !metrics_ok {
            eprintln!("FAIL: {}: metrics snapshot differs", app.name());
        }
        failed |= !(image_ok && traj_ok && metrics_ok);

        let overhead = chaos.secs / baseline.secs.max(1e-9);
        total_recoveries += chaos.recovery.recoveries;
        total_replays += chaos.recovery.replayed_iterations;
        println!(
            "{:>15}: {:>2} recoveries, {:>2} iterations replayed ({} clean), \
             {:>3} checkpoints ({} B latest), {:.2}x wall vs unkilled, seed {seed:#x}",
            app.name(),
            chaos.recovery.recoveries,
            chaos.recovery.replayed_iterations,
            chaos.iterations,
            chaos.recovery.checkpoints_taken,
            chaos.recovery.checkpoint_bytes,
            overhead,
        );
        rows.push(serde_json::json!({
            "app": app.name(),
            "seed": seed,
            "seed_tries": seed_tries,
            "iterations": chaos.iterations,
            "recoveries": chaos.recovery.recoveries,
            "replayed_iterations": chaos.recovery.replayed_iterations,
            "checkpoints_taken": chaos.recovery.checkpoints_taken,
            "checkpoint_bytes": chaos.recovery.checkpoint_bytes,
            "image_bytes": baseline.image.len(),
            "baseline_secs": baseline.secs,
            "chaos_secs": chaos.secs,
            "wall_overhead": overhead,
            "image_identical": image_ok,
            "trajectory_identical": traj_ok,
            "metrics_identical": metrics_ok,
        }));
    }

    let report = serde_json::json!({
        "bench": "seeded chaos: hard-fault kill + checkpoint resume, all apps",
        "scale": SCALE,
        "heap_bytes": HEAP_BYTES,
        "chunk_tasks": CHUNK_TASKS,
        "device_loss_rate": DEVICE_LOSS_RATE,
        "poisoned_launch_rate": POISONED_LAUNCH_RATE,
        "checkpoint_policy": "memory, every iteration boundary",
        "apps": rows,
        "total_recoveries": total_recoveries,
        "total_replayed_iterations": total_replays,
        "all_identical": !failed,
    });
    sepo_bench::write_json_mirrored("BENCH_chaos", &report);
    println!(
        "\n{} recoveries across {} apps, {} iterations replayed; wrote BENCH_chaos.json",
        total_recoveries,
        App::ALL.len(),
        total_replays
    );
    if failed {
        std::process::exit(1);
    }
}
