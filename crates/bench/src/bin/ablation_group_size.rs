//! Ablation A — the bucket-group size trade-off (§IV-A).
//!
//! "While having several pages to allocate memory from improves the
//! performance of the memory allocator, it increases the potential for
//! memory fragmentation … This is a trade-off in which the right balance
//! might be different for each application. Our hash table library,
//! therefore, allows each application to balance this trade-off by
//! adjusting the size of the bucket groups."
//!
//! Sweep buckets-per-group for PVC on a fixed dataset and heap: small
//! groups (many allocation pointers) minimize allocator contention but
//! strand more partially-filled pages (fragmentation → more iterations);
//! one giant group is the MapCG-like degenerate case whose single pointer
//! serializes every allocation.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use sepo_apps::{pvc, AppConfig};
use sepo_bench::report::fmt_bytes;
use sepo_bench::{device_heap, gpu_total_time, scale, system, Table};
use sepo_core::config::{Combiner, Organization, TableConfig};
use sepo_datagen::App;
use std::sync::Arc;

fn main() {
    let spec = system();
    let scale = scale();
    let heap = device_heap(&spec);
    let ds = App::PageViewCount.generate(2, scale);
    // Fine 4 KiB pages give the scaled heap a page population comparable
    // (relative to group counts) to the paper's GB-scale heap.
    let base =
        TableConfig::tuned(Organization::Combining(Combiner::Add), heap).with_page_size(4096);
    let n_buckets = base.n_buckets;
    let n_pages = heap as usize / 4096;

    let mut table = Table::new(
        "Ablation A (SS IV-A): bucket-group size vs contention and fragmentation",
        &[
            "Buckets/group",
            "Groups",
            "Iterations",
            "Wasted bytes",
            "Contention",
            "Total (sim)",
        ],
    );
    let mut json = Vec::new();
    for target_groups in [n_pages / 2, n_pages / 4, 64, 16, 4, 1] {
        let target_groups = target_groups.max(1);
        let bpg = n_buckets.div_ceil(target_groups);
        let cfg = base.clone().with_buckets_per_group(bpg);
        let groups = cfg.n_groups();
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
        let run = pvc::run(&ds, &AppConfig::new(heap).with_table(cfg), &exec);
        let stats = run.table.heap().stats();
        let hist = run.table.full_contention_histogram();
        let t = gpu_total_time(&run.outcome, &hist, &spec);
        table.row(vec![
            bpg.to_string(),
            groups.to_string(),
            t.iterations.to_string(),
            fmt_bytes(stats.wasted_bytes),
            t.contention.to_string(),
            t.total.to_string(),
        ]);
        json.push(serde_json::json!({
            "buckets_per_group": bpg,
            "groups": groups,
            "iterations": t.iterations,
            "wasted_bytes": stats.wasted_bytes,
            "contention_seconds": t.contention.as_secs_f64(),
            "total_seconds": t.total.as_secs_f64(),
        }));
    }
    table.note(format!(
        "scale = 1/{scale}; PVC dataset #3; heap = {}",
        fmt_bytes(heap)
    ));
    table.note("fewer groups -> less fragmentation waste but one hotter allocation pointer");
    table.print();
    sepo_bench::write_json(
        "ablation_group_size",
        &serde_json::json!({ "scale": scale, "rows": json }),
    );
}
