//! Launch-throughput smoke check, tracked from PR to PR.
//!
//! Measures empty-kernel launch throughput of the pool-backed executor and
//! compares it against a faithful reproduction of the pre-pool executor
//! (one `std::thread::scope` spawn/join set per launch, one warp claimed
//! per `fetch_add`, five shared-atomic metric updates per warp). Writes
//! `BENCH_gpu_sim.json` (repo root and `results/`) so the perf trajectory
//! is machine-readable.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use gpu_sim::spec::WARP_SIZE;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Tasks per launch: enough warps (32) that the old claim loop is
/// exercised, small enough that fixed per-launch cost dominates.
const TASKS: usize = 1_024;
/// Launches per measurement.
const LAUNCHES: usize = 300;

/// The executor as it was before the worker pool: spawn worker threads for
/// every launch, claim one warp per `fetch_add`, account every warp with
/// shared atomic read-modify-writes.
fn spawn_per_launch_reference(n_tasks: usize, workers: usize, metrics: &Metrics) {
    let n_warps = n_tasks.div_ceil(WARP_SIZE);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                loop {
                    let w = cursor.fetch_add(1, Ordering::Relaxed);
                    if w >= n_warps {
                        break;
                    }
                    for lane in 0..WARP_SIZE.min(n_tasks - w * WARP_SIZE) {
                        black_box(w * WARP_SIZE + lane);
                    }
                    // The five per-warp shared-counter updates the old
                    // executor performed.
                    metrics.add_compute_units(1);
                    metrics.add_stream_bytes(0);
                    metrics.add_device_bytes(0);
                    metrics.add_chain_hops(0);
                    metrics.add_divergence_events(0);
                }
            });
        }
    });
    metrics.add_tasks(n_tasks as u64);
}

struct Measurement {
    launches_per_sec: f64,
    tasks_per_sec: f64,
}

fn measure(mut launch: impl FnMut()) -> Measurement {
    // Warm-up (first pool use, thread caches).
    for _ in 0..10 {
        launch();
    }
    let start = Instant::now();
    for _ in 0..LAUNCHES {
        launch();
    }
    let secs = start.elapsed().as_secs_f64();
    Measurement {
        launches_per_sec: LAUNCHES as f64 / secs,
        tasks_per_sec: (LAUNCHES * TASKS) as f64 / secs,
    }
}

fn main() {
    let pool = gpu_sim::pool::WorkerPool::global();
    let workers = pool.workers();

    let old_metrics = Metrics::new();
    let old = measure(|| spawn_per_launch_reference(TASKS, workers.max(1), &old_metrics));

    let mut rows = Vec::new();
    let mut pooled = Vec::new();
    for (mode, label) in [
        (ExecMode::ParallelDeterministic, "parallel_deterministic"),
        (ExecMode::Parallel { workers: 0 }, "parallel"),
    ] {
        let exec = Executor::new(mode, Arc::new(Metrics::new()));
        let m = measure(|| {
            exec.launch(TASKS, |ctx| {
                black_box(ctx.task());
            });
        });
        println!(
            "{label:>24}: {:>12.0} launches/s {:>14.0} tasks/s ({:.1}x vs spawn-per-launch)",
            m.launches_per_sec,
            m.tasks_per_sec,
            m.launches_per_sec / old.launches_per_sec,
        );
        rows.push(serde_json::json!({
            "mode": label,
            "launches_per_sec": m.launches_per_sec,
            "tasks_per_sec": m.tasks_per_sec,
            "speedup_vs_spawn_per_launch": m.launches_per_sec / old.launches_per_sec,
        }));
        pooled.push(m);
    }
    println!(
        "{:>24}: {:>12.0} launches/s {:>14.0} tasks/s (pre-pool reference, {} workers)",
        "spawn_per_launch",
        old.launches_per_sec,
        old.tasks_per_sec,
        workers.max(1)
    );

    let best = pooled
        .iter()
        .map(|m| m.launches_per_sec)
        .fold(0.0_f64, f64::max);
    let report = serde_json::json!({
        "bench": "empty-kernel launch throughput",
        "tasks_per_launch": TASKS,
        "launches": LAUNCHES,
        "pool_workers": workers,
        "available_parallelism": sepo_bench::host_parallelism(),
        "single_cpu_warning": sepo_bench::single_cpu_warning("perf_smoke"),
        "pool_startups": gpu_sim::pool::startup_count(),
        "threads_spawned": gpu_sim::pool::threads_spawned(),
        "modes": rows,
        "spawn_per_launch_reference": serde_json::json!({
            "launches_per_sec": old.launches_per_sec,
            "tasks_per_sec": old.tasks_per_sec,
        }),
        "best_speedup_vs_spawn_per_launch": best / old.launches_per_sec,
    });
    sepo_bench::write_json_mirrored("BENCH_gpu_sim", &report);
    println!("\nwrote BENCH_gpu_sim.json");
    if best / old.launches_per_sec < 5.0 {
        eprintln!(
            "WARNING: pooled executor under 5x the spawn-per-launch reference ({:.1}x)",
            best / old.launches_per_sec
        );
        std::process::exit(1);
    }
}
