//! End-to-end data-integrity bench: seeded silent corruption swept over
//! every application, with detection-rate and recovery-overhead gates.
//!
//! For each of the seven §VI applications, at 1 and 4 shards, this runs a
//! corruption-free reference and then corruption runs at two rate tiers
//! (in-flight PCIe bit flips, resting device-page flips, disk byte flips
//! on checkpoint images). Seeds are swept until at least one flip actually
//! strikes, so every comparison covers real injected damage. Checkpoints
//! go to disk (a sharded SEPOCKS2 file at 4 shards) so the disk-flip path
//! is exercised too.
//!
//! Three gates make this a regression harness rather than a report:
//!
//! - **100% detection.** Every injected flip must be caught by a CRC32C
//!   verification: retransmits + boundary-scrub detections + checkpoint
//!   image rewrites must equal the number of flips the plan injected.
//!   Each draw damages a distinct artifact (one transfer attempt, one
//!   resting page per window, one image write attempt), so the counts
//!   match one-to-one when nothing escapes.
//! - **Byte-identical recovery.** The recovered run's saved table image
//!   (and, unsharded, its completion trajectory) must equal the
//!   corruption-free reference byte for byte. An escaped flip anywhere
//!   would diverge it.
//! - **Zero undetected corruption.** Implied by the two above; any gate
//!   failure exits non-zero.
//!
//! Writes `BENCH_integrity.json` (repo root and `results/`) with per-app,
//! per-shard-count, per-tier injection/detection counts, recovery actions,
//! and wall-clock overhead versus the clean reference.

use gpu_sim::executor::Executor;
use gpu_sim::{CorruptionConfig, CorruptionKind, FaultConfig, FaultPlan};
use sepo_apps::sharded::{run_app_sharded, unsharded_image};
use sepo_bench::harness::{
    instrumented_run, require, standard_config, standard_executor, BenchRun, REGRESSION_SCALE,
};
use sepo_core::{CheckpointPolicy, RecoveryStats, ShardedCheckpointFile};
use sepo_datagen::{App, Dataset};
use std::sync::Arc;
use std::time::Instant;

/// Records per app — the regression harnesses' shared scale.
const SCALE: u64 = REGRESSION_SCALE;
/// Device heap small enough that every app evicts across several
/// iterations, so all three corruption sites see traffic.
const HEAP_BYTES: u64 = 96 << 10;
/// Tasks per kernel launch.
const CHUNK_TASKS: usize = 32;
/// The rate sweep: (label, pcie bit-flip, resting page-flip, disk
/// byte-flip) per-draw probabilities. The low tier mirrors
/// [`CorruptionConfig::standard`]; the high tier is hostile enough that
/// every app sees several flips per seed.
const TIERS: [(&str, f64, f64, f64); 2] = [
    ("standard", 0.05, 0.01, 0.05),
    ("elevated", 0.20, 0.08, 0.25),
];
/// Shard counts under test (`1` is exactly the single-device path).
const SHARD_COUNTS: [u32; 2] = [1, 4];
/// Seeds tried per (app, shards, tier) before giving up on provoking a
/// flip. At these rates the first seed almost always strikes.
const MAX_SEED_TRIES: u64 = 20;
/// First corruption seed (successive tries increment from here).
const BASE_SEED: u64 = 0xB17_F11B;

/// A corruption plan at one tier; shard i draws from `seed ^ i`.
fn corruption_plan(seed: u64, tier: &(&str, f64, f64, f64)) -> FaultPlan {
    FaultPlan::new(FaultConfig::quiet(seed)).with_corruption(CorruptionConfig {
        seed,
        pcie_bit_flip_rate: tier.1,
        resting_page_flip_rate: tier.2,
        disk_byte_flip_rate: tier.3,
    })
}

/// Sum the recovery stats the integrity gates read across shards.
fn fold_recovery<'a>(stats: impl Iterator<Item = &'a RecoveryStats>) -> RecoveryStats {
    let mut total = RecoveryStats::default();
    for s in stats {
        total.retransmits += s.retransmits;
        total.corruptions_detected += s.corruptions_detected;
        total.integrity_restores += s.integrity_restores;
        total.checkpoint_rewrites += s.checkpoint_rewrites;
        total.scrubbed_pages += s.scrubbed_pages;
    }
    total
}

/// Flips detected by a CRC check, by recovery action. One-to-one with
/// injections when nothing escapes: each PCIe flip damages one transfer
/// attempt (one retransmit), each resting flip one page per scrub window
/// (one detection), each disk flip one image write attempt (one rewrite).
fn detections(rec: &RecoveryStats) -> u64 {
    rec.retransmits + rec.corruptions_detected + u64::from(rec.checkpoint_rewrites)
}

struct CorruptRun {
    image: Vec<u8>,
    trajectory: Option<Vec<u64>>,
    recovery: RecoveryStats,
    injected: u64,
    by_kind: [u64; 3],
    secs: f64,
}

/// One corruption run at `n` shards. Returns `None` when the seed never
/// injected a flip (the sweep moves on).
fn corrupt_run(
    app: App,
    ds: &Dataset,
    n: u32,
    seed: u64,
    tier: &(&str, f64, f64, f64),
    ckp_path: &std::path::Path,
) -> Option<CorruptRun> {
    let start = Instant::now();
    let (image, trajectory, recovery, plans) = if n == 1 {
        let exec = standard_executor(Some(corruption_plan(seed, tier)));
        let cfg = standard_config(HEAP_BYTES, CHUNK_TASKS)
            .with_checkpoint(CheckpointPolicy::Disk(ckp_path.into()))
            .with_max_recoveries(10_000);
        let run = instrumented_run(app, ds, &cfg, &exec);
        let plan = Arc::clone(exec.faults().expect("plan installed"));
        (
            unsharded_image(&run.run),
            Some(run.trajectory),
            run.run.outcome.recovery,
            vec![plan],
        )
    } else {
        let file = Arc::new(ShardedCheckpointFile::new(ckp_path.into(), n));
        let execs: Vec<Executor> = (0..n)
            .map(|i| standard_executor(Some(corruption_plan(seed ^ u64::from(i), tier))))
            .collect();
        let cfgs: Vec<_> = (0..n)
            .map(|i| {
                standard_config(HEAP_BYTES, CHUNK_TASKS)
                    .with_checkpoint(CheckpointPolicy::SharedDisk(Arc::clone(&file), i))
                    .with_max_recoveries(10_000)
            })
            .collect();
        let sharded = run_app_sharded(app, ds, &cfgs, &execs);
        let recovery = fold_recovery(sharded.shards.iter().map(|r| &r.outcome.recovery));
        let plans: Vec<_> = execs
            .iter()
            .map(|e| Arc::clone(e.faults().expect("plan installed")))
            .collect();
        (sharded.image, None, recovery, plans)
    };
    let secs = start.elapsed().as_secs_f64();
    let injected: u64 = plans.iter().map(|p| p.total_corruption_injected()).sum();
    if injected == 0 {
        return None;
    }
    let kind = |k: CorruptionKind| plans.iter().map(|p| p.corruption_injected(k)).sum();
    Some(CorruptRun {
        image,
        trajectory,
        recovery,
        injected,
        by_kind: [
            kind(CorruptionKind::PcieBitFlip),
            kind(CorruptionKind::RestingPageFlip),
            kind(CorruptionKind::DiskByteFlip),
        ],
        secs,
    })
}

/// Corruption-free reference at `n` shards: merged canonical image,
/// trajectory (unsharded only), and wall-clock.
fn reference_run(app: App, ds: &Dataset, n: u32) -> (Vec<u8>, Option<Vec<u64>>, f64) {
    let start = Instant::now();
    if n == 1 {
        let exec = standard_executor(None);
        let cfg = standard_config(HEAP_BYTES, CHUNK_TASKS);
        let run: BenchRun = instrumented_run(app, ds, &cfg, &exec);
        let img = unsharded_image(&run.run);
        (img, Some(run.trajectory), start.elapsed().as_secs_f64())
    } else {
        let execs: Vec<Executor> = (0..n).map(|_| standard_executor(None)).collect();
        let cfgs: Vec<_> = (0..n)
            .map(|_| standard_config(HEAP_BYTES, CHUNK_TASKS))
            .collect();
        let sharded = run_app_sharded(app, ds, &cfgs, &execs);
        (sharded.image, None, start.elapsed().as_secs_f64())
    }
}

fn main() {
    let cpu_warning = sepo_bench::single_cpu_warning("integrity");
    let tmp = std::env::temp_dir().join(format!("sepo-integrity-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create checkpoint scratch dir");
    let mut rows = Vec::new();
    let mut failed = false;
    let mut total_injected = 0u64;
    let mut total_detected = 0u64;

    for app in App::ALL {
        let ds = app.generate(0, SCALE);
        for n in SHARD_COUNTS {
            let (ref_image, ref_traj, ref_secs) = reference_run(app, &ds, n);
            for (t, tier) in TIERS.iter().enumerate() {
                let ckp_path = tmp.join(format!("{}-x{n}-{}.ckp", app.name(), tier.0));
                // Sweep seeds until a flip actually strikes; a flip-free
                // run would prove nothing about detection.
                let mut struck = None;
                let mut seed_tries = 0u64;
                for s in 0..MAX_SEED_TRIES {
                    let seed = BASE_SEED + (t as u64) * MAX_SEED_TRIES + s;
                    seed_tries = s + 1;
                    if let Some(run) = corrupt_run(app, &ds, n, seed, tier, &ckp_path) {
                        struck = Some((seed, run));
                        break;
                    }
                }
                let Some((seed, run)) = struck else {
                    eprintln!(
                        "FAIL: {} x{n} {}: no flip struck in {MAX_SEED_TRIES} seeds",
                        app.name(),
                        tier.0
                    );
                    failed = true;
                    continue;
                };

                let detected = detections(&run.recovery);
                let gate = format!("x{n} {}", tier.0);
                let detect_ok = require(
                    app.name(),
                    &format!("{gate}: every injected flip detected"),
                    detected == run.injected,
                );
                let image_ok = require(
                    app.name(),
                    &format!("{gate}: recovered image identical to corruption-free"),
                    run.image == ref_image,
                );
                let traj_ok = require(
                    app.name(),
                    &format!("{gate}: recovered trajectory identical"),
                    run.trajectory == ref_traj || run.trajectory.is_none(),
                );
                failed |= !(detect_ok && image_ok && traj_ok);
                total_injected += run.injected;
                total_detected += detected;

                let overhead = run.secs / ref_secs.max(1e-9);
                println!(
                    "{:>15} x{n} {:>8}: {:>3} flips injected ({} pcie, {} resting, {} disk), \
                     {:>3} detected: {} retransmits, {} restores, {} rewrites; \
                     {:.2}x wall vs clean, seed {seed:#x}{}",
                    app.name(),
                    tier.0,
                    run.injected,
                    run.by_kind[0],
                    run.by_kind[1],
                    run.by_kind[2],
                    detected,
                    run.recovery.retransmits,
                    run.recovery.integrity_restores,
                    run.recovery.checkpoint_rewrites,
                    overhead,
                    if detect_ok && image_ok && traj_ok {
                        ""
                    } else {
                        "  <-- FAILED"
                    },
                );
                rows.push(serde_json::json!({
                    "app": app.name(),
                    "shards": n,
                    "tier": tier.0,
                    "rate_pcie": tier.1,
                    "rate_resting": tier.2,
                    "rate_disk": tier.3,
                    "seed": seed,
                    "seed_tries": seed_tries,
                    "injected": run.injected,
                    "injected_pcie": run.by_kind[0],
                    "injected_resting": run.by_kind[1],
                    "injected_disk": run.by_kind[2],
                    "detected": detected,
                    "detection_rate": detected as f64 / run.injected as f64,
                    "retransmits": run.recovery.retransmits,
                    "integrity_restores": run.recovery.integrity_restores,
                    "checkpoint_rewrites": run.recovery.checkpoint_rewrites,
                    "scrubbed_pages": run.recovery.scrubbed_pages,
                    "reference_secs": ref_secs,
                    "corrupt_secs": run.secs,
                    "wall_overhead": overhead,
                    "image_identical": image_ok,
                    "trajectory_identical": traj_ok,
                }));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);

    let report = serde_json::json!({
        "bench": "end-to-end data integrity: seeded silent corruption, all apps",
        "scale": SCALE,
        "heap_bytes": HEAP_BYTES,
        "chunk_tasks": CHUNK_TASKS,
        "tiers": TIERS.iter().map(|(name, p, r, d)| serde_json::json!({
            "tier": *name, "pcie": *p, "resting": *r, "disk": *d,
        })).collect::<Vec<_>>(),
        "shard_counts": SHARD_COUNTS,
        "checkpoint_policy": "disk (SEPOCKP2; sharded SEPOCKS2), every iteration boundary",
        "available_parallelism": sepo_bench::host_parallelism(),
        "single_cpu_warning": cpu_warning,
        "runs": rows,
        "total_injected": total_injected,
        "total_detected": total_detected,
        "undetected": total_injected - total_detected.min(total_injected),
        "all_detected_and_identical": !failed,
    });
    sepo_bench::write_json_mirrored("BENCH_integrity", &report);
    println!(
        "\n{total_detected}/{total_injected} injected flips detected across {} apps; \
         wrote BENCH_integrity.json",
        App::ALL.len()
    );
    if failed {
        std::process::exit(1);
    }
}
