//! Online-serving bench: epoch-snapshot point lookups under live SEPO
//! iterations, all seven §VI applications.
//!
//! For each app this runs a serving-off baseline (parallel-deterministic
//! executor, audit and sanitizer on) and then the identical run with an
//! [`sepo_core::EpochPublisher`] wired in. At every published epoch the
//! harness fires a Zipf-skewed mixed query load (point lookups on
//! combining tables, grouped scans on multi-valued ones, one absent key
//! in five) through a separate serving executor and prices each batch
//! from the serving executor's own metrics delta: probe-kernel time at
//! device rates plus the bulk PCIe uploads/downloads the batch charged.
//!
//! Two gates make this a regression harness rather than a report:
//!
//! - **Byte-identity.** The serving run's saved table image, iteration
//!   trajectory, and driver metrics snapshot must equal the baseline's —
//!   serving must be observationally free.
//! - **Oracle.** The finalized epoch must answer every key exactly as the
//!   offline collectors do.
//!
//! Writes `BENCH_serving.json` (repo root and `results/`) with p50/p99
//! simulated per-query latency per app, and exits non-zero on any
//! divergence.

use gpu_sim::cost::GpuCostModel;
use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::{ContentionHistogram, Metrics};
use gpu_sim::pcie::PcieBus;
use gpu_sim::SystemSpec;
use sepo_bench::harness::{
    instrumented_run, require, standard_config, standard_executor, BenchRun, REGRESSION_SCALE,
};
use sepo_core::{EpochPublisher, Organization, SepoTable};
use sepo_datagen::{App, Dataset, Rng, Zipf};
use std::sync::{Arc, Mutex};

/// Records per app — the scale the repo's regression harnesses share.
const SCALE: u64 = REGRESSION_SCALE;
/// Device heap small enough that every app runs several iterations, so
/// serving sees epochs with state split across device and host.
const HEAP_BYTES: u64 = 96 << 10;
/// Tasks per kernel launch (several launches per iteration).
const CHUNK_TASKS: usize = 32;
/// Query batches fired at each published epoch.
const BATCHES_PER_EPOCH: usize = 8;
/// Queries per batch (dedup shrinks the probe to the unique keys).
const BATCH: usize = 256;
/// Zipf skew of the query mix (the paper's skewed-workload setting).
const ZIPF_S: f64 = 0.9;
/// Base seed for the per-epoch query generators.
const QUERY_SEED: u64 = 0x5E17_BEEF;

fn empty_hist() -> ContentionHistogram {
    ContentionHistogram::from_counts(std::iter::empty::<u64>())
}

struct ServeLoad {
    /// Per-batch mean per-query simulated latency, in seconds.
    per_query_secs: Vec<f64>,
    epochs: u32,
    queries: u64,
    hits: u64,
    errors: Vec<String>,
}

/// One audited + sanitized run; `publisher` arms epoch publication.
fn run_once(app: App, ds: &Dataset, publisher: Option<&Arc<EpochPublisher>>) -> BenchRun {
    let exec = standard_executor(None);
    let mut cfg = standard_config(HEAP_BYTES, CHUNK_TASKS);
    if let Some(p) = publisher {
        cfg = cfg.with_serving(Arc::clone(p));
    }
    instrumented_run(app, ds, &cfg, &exec)
}

/// Hook body: fire the epoch's query batches and price each one from the
/// serving executor's metrics delta.
#[allow(clippy::too_many_arguments)]
fn serve_epoch(
    snap: &sepo_core::EpochSnapshot,
    exec: &Executor,
    serve_metrics: &Metrics,
    gpu: &GpuCostModel,
    bus: &PcieBus,
    load: &mut ServeLoad,
) {
    load.epochs += 1;
    let keys = snap.visible_keys();
    if keys.is_empty() {
        return;
    }
    let mut rng = Rng::new(QUERY_SEED ^ u64::from(snap.iteration()));
    let zipf = Zipf::new(keys.len(), ZIPF_S);
    for _ in 0..BATCHES_PER_EPOCH {
        let owned: Vec<Vec<u8>> = (0..BATCH)
            .map(|i| {
                if i % 5 == 4 {
                    format!("absent-{i}").into_bytes()
                } else {
                    keys[zipf.sample(&mut rng)].clone()
                }
            })
            .collect();
        let queries: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let before = serve_metrics.snapshot();
        let hits = match snap.organization() {
            Organization::Combining(_) => match snap.batch_get(exec, &queries) {
                Ok(ans) => ans.iter().filter(|a| a.is_some()).count(),
                Err(e) => {
                    load.errors.push(format!("epoch {}: {e}", snap.iteration()));
                    continue;
                }
            },
            Organization::MultiValued => match snap.batch_get_grouped(exec, &queries) {
                Ok(ans) => ans.iter().filter(|a| a.is_some()).count(),
                Err(e) => {
                    load.errors.push(format!("epoch {}: {e}", snap.iteration()));
                    continue;
                }
            },
            Organization::Basic => return,
        };
        let d = serve_metrics.snapshot().delta(&before);
        // Price the batch: probe-kernel time at device rates plus the bulk
        // transfers it charged (each with its own initiation latency).
        let lat0 = bus.bulk_transfer_time(0);
        let t = gpu.kernel_time(&d, &empty_hist())
            + bus.bulk_transfer_time(d.pcie_bulk_bytes)
            + lat0 * d.pcie_bulk_transfers.saturating_sub(1);
        load.per_query_secs.push(t.as_secs_f64() / BATCH as f64);
        load.queries += queries.len() as u64;
        load.hits += hits as u64;
    }
}

/// Finalized-epoch oracle: every key the offline collectors report must
/// answer identically from the last published epoch.
fn final_oracle(
    table: &SepoTable,
    publisher: &EpochPublisher,
    exec: &Executor,
) -> Result<usize, String> {
    let snap = publisher.current().ok_or("no epoch published")?;
    if !snap.finalized() {
        return Err("last epoch is not the finalized one".into());
    }
    let mut checked = 0usize;
    match snap.organization() {
        Organization::Combining(_) => {
            let truth = table.collect_combining();
            for chunk in truth.chunks(4096) {
                let q: Vec<&[u8]> = chunk.iter().map(|(k, _)| k.as_slice()).collect();
                let ans = snap.batch_get(exec, &q).map_err(|e| e.to_string())?;
                for ((k, v), a) in chunk.iter().zip(&ans) {
                    if *a != Some(*v) {
                        return Err(format!(
                            "key {:?}: epoch says {a:?}, collectors say {v}",
                            String::from_utf8_lossy(k)
                        ));
                    }
                    checked += 1;
                }
            }
        }
        Organization::MultiValued => {
            let truth = table.collect_multivalued();
            for chunk in truth.chunks(1024) {
                let q: Vec<&[u8]> = chunk.iter().map(|(k, _)| k.as_slice()).collect();
                let ans = snap
                    .batch_get_grouped(exec, &q)
                    .map_err(|e| e.to_string())?;
                for ((k, vs), a) in chunk.iter().zip(&ans) {
                    let mut want = vs.clone();
                    want.sort();
                    let mut got = a.clone().unwrap_or_default();
                    got.sort();
                    if got != want {
                        return Err(format!(
                            "key {:?}: grouped answer diverges",
                            String::from_utf8_lossy(k)
                        ));
                    }
                    checked += 1;
                }
            }
        }
        Organization::Basic => {}
    }
    Ok(checked)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let spec = SystemSpec::scaled(SCALE);
    let mut rows = Vec::new();
    let mut failed = false;
    let mut total_queries = 0u64;

    for app in App::ALL {
        let ds = app.generate(0, SCALE);
        let baseline = run_once(app, &ds, None);

        // The serving run: the table must be rebuilt from scratch so the
        // comparison is run-against-run, not table-against-itself.
        let publisher = Arc::new(EpochPublisher::default());
        let serve_metrics = Arc::new(Metrics::new());
        let serve_exec = Arc::new(Executor::new(
            ExecMode::ParallelDeterministic,
            Arc::clone(&serve_metrics),
        ));
        let load = Arc::new(Mutex::new(ServeLoad {
            per_query_secs: Vec::new(),
            epochs: 0,
            queries: 0,
            hits: 0,
            errors: Vec::new(),
        }));
        {
            let load = Arc::clone(&load);
            let exec = Arc::clone(&serve_exec);
            let metrics = Arc::clone(&serve_metrics);
            let gpu = GpuCostModel::new(spec.device.clone());
            let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
            publisher.on_epoch(move |snap| {
                serve_epoch(snap, &exec, &metrics, &gpu, &bus, &mut load.lock().unwrap());
            });
        }

        let ds2 = app.generate(0, SCALE);
        let serving = run_once(app, &ds2, Some(&publisher));

        let image_ok = require(
            app.name(),
            "serving run's table image identical",
            serving.image == baseline.image,
        );
        let traj_ok = require(
            app.name(),
            "serving run's trajectory identical",
            serving.trajectory == baseline.trajectory,
        );
        let metrics_ok = require(
            app.name(),
            "serving left the driver's metrics untouched",
            serving.snapshot == baseline.snapshot,
        );

        let oracle = final_oracle(&serving.run.table, &publisher, &serve_exec);
        let (oracle_ok, oracle_keys) = match &oracle {
            Ok(n) => (true, *n),
            Err(e) => {
                eprintln!("FAIL: {}: final-epoch oracle: {e}", app.name());
                (false, 0)
            }
        };

        let st = load.lock().unwrap();
        for e in &st.errors {
            eprintln!("FAIL: {}: serving error: {e}", app.name());
        }
        let clean = image_ok && traj_ok && metrics_ok && oracle_ok && st.errors.is_empty();
        failed |= !clean;

        let mut lat = st.per_query_secs.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50_us = percentile(&lat, 0.50) * 1e6;
        let p99_us = percentile(&lat, 0.99) * 1e6;
        total_queries += st.queries;
        let serve_snap = serve_metrics.snapshot();
        println!(
            "{:>15}: {:>2} epochs, {:>5} queries ({:>5} hits), \
             p50 {:>7.3}us  p99 {:>7.3}us per query, oracle over {} keys: {}",
            app.name(),
            st.epochs,
            st.queries,
            st.hits,
            p50_us,
            p99_us,
            oracle_keys,
            if clean { "ok" } else { "FAILED" },
        );
        rows.push(serde_json::json!({
            "app": app.name(),
            "iterations": baseline.iterations(),
            "epochs": st.epochs,
            "batches": lat.len(),
            "queries": st.queries,
            "hits": st.hits,
            "p50_query_latency_us": p50_us,
            "p99_query_latency_us": p99_us,
            "serving_bulk_transfers": serve_snap.pcie_bulk_transfers,
            "serving_bulk_bytes": serve_snap.pcie_bulk_bytes,
            "oracle_keys_checked": oracle_keys,
            "image_identical": image_ok,
            "trajectory_identical": traj_ok,
            "metrics_identical": metrics_ok,
            "oracle_ok": oracle_ok,
        }));
    }

    let report = serde_json::json!({
        "bench": "online serving: epoch-snapshot lookups under live SEPO iterations",
        "scale": SCALE,
        "heap_bytes": HEAP_BYTES,
        "chunk_tasks": CHUNK_TASKS,
        "batches_per_epoch": BATCHES_PER_EPOCH,
        "batch_queries": BATCH,
        "zipf_s": ZIPF_S,
        "query_seed": QUERY_SEED,
        "apps": rows,
        "total_queries": total_queries,
        "all_identical_and_oracle_ok": !failed,
    });
    sepo_bench::write_json_mirrored("BENCH_serving", &report);
    println!(
        "\n{} queries served across {} apps; wrote BENCH_serving.json",
        total_queries,
        App::ALL.len()
    );
    if failed {
        std::process::exit(1);
    }
}
