//! Ablation D — BigKernel-style transfer/compute overlap (§V, \[10\]).
//!
//! The runtime streams input chunks with double buffering so uploads hide
//! behind kernels. This ablation re-prices the same recorded runs with and
//! without the overlap (`pipelined_total` vs `serial_total`) across chunk
//! sizes, quantifying what the pipelining buys and how the chunk size
//! moves the trade-off (tiny chunks amortize poorly over per-transfer
//! latency; huge chunks leave nothing to overlap).
//!
//! A second section prices the *eviction* direction the same way: each
//! iteration's pipelined upload/kernel segment composed with its boundary
//! eviction DMA, either strictly alternating (the synchronous boundary) or
//! with each eviction draining behind the next segment (the
//! `--evict-overlap` pipe) — the same recurrence, run device→host.

use gpu_sim::clock::SimTime;
use gpu_sim::cost::GpuCostModel;
use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::{ContentionHistogram, Metrics};
use gpu_sim::pcie::PcieBus;
use gpu_sim::pipeline::{pipelined_total, serial_total};
use sepo_apps::{pvc, AppConfig};
use sepo_bench::{device_heap, scale, system, Table};
use sepo_datagen::App;
use std::sync::Arc;

fn main() {
    let spec = system();
    let scale = scale();
    let heap = device_heap(&spec);
    let ds = App::PageViewCount.generate(3, scale);
    let gpu = GpuCostModel::new(spec.device.clone());
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    let empty = ContentionHistogram::from_counts(std::iter::empty::<u64>());

    let mut table = Table::new(
        "Ablation D (SS V): BigKernel pipelining benefit (PVC dataset #4)",
        &[
            "Chunk (tasks)",
            "Chunks",
            "Pipelined (sim)",
            "Serial (sim)",
            "Saved",
        ],
    );
    let mut evict_table = Table::new(
        "Ablation D2 (SS V): eviction-direction overlap benefit (PVC dataset #4)",
        &[
            "Chunk (tasks)",
            "Boundaries",
            "Overlapped (sim)",
            "Serial (sim)",
            "Saved",
        ],
    );
    let mut json = Vec::new();
    let mut evict_json = Vec::new();
    for chunk_tasks in [1usize << 10, 1 << 12, 1 << 14, 1 << 16] {
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
        let mut cfg = AppConfig::new(heap);
        cfg.driver.chunk_tasks = chunk_tasks;
        let run = pvc::run(&ds, &cfg, &exec);
        // Price every iteration's chunk schedule both ways.
        let mut piped = SimTime::ZERO;
        let mut serial = SimTime::ZERO;
        let mut n_chunks = 0u32;
        for iter in &run.outcome.iterations {
            let k = gpu.kernel_time(&iter.kernel, &empty);
            let chunks = iter.chunks.max(1) as usize;
            n_chunks += iter.chunks;
            let uploads = vec![bus.bulk_transfer_time(iter.input_bytes / chunks as u64); chunks];
            let kernels = vec![k / chunks as u64; chunks];
            piped += pipelined_total(&uploads, &kernels);
            serial += serial_total(&uploads, &kernels);
        }
        let saved = serial - piped;
        table.row(vec![
            chunk_tasks.to_string(),
            n_chunks.to_string(),
            piped.to_string(),
            serial.to_string(),
            format!(
                "{saved} ({:.0}%)",
                100.0 * saved.as_secs_f64() / serial.as_secs_f64().max(1e-12)
            ),
        ]);
        json.push(serde_json::json!({
            "chunk_tasks": chunk_tasks,
            "chunks": n_chunks,
            "pipelined_seconds": piped.as_secs_f64(),
            "serial_seconds": serial.as_secs_f64(),
        }));
    }

    // Eviction direction: a heap tight enough to force several eviction
    // boundaries mid-run (a heap that fits everything only evicts at the
    // final boundary, which has no following segment to hide behind). The
    // recurrence is the same one, with whole iteration segments as the
    // "transfer" lane and boundary evictions as the "compute" lane.
    let tight_heap = heap / 64;
    for chunk_tasks in [1usize << 10, 1 << 12, 1 << 14, 1 << 16] {
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
        let mut cfg = AppConfig::new(tight_heap);
        cfg.driver.chunk_tasks = chunk_tasks;
        let run = pvc::run(&ds, &cfg, &exec);
        let mut segments = Vec::new();
        let mut evictions = Vec::new();
        for iter in &run.outcome.iterations {
            let k = gpu.kernel_time(&iter.kernel, &empty);
            let chunks = iter.chunks.max(1) as usize;
            let uploads = vec![bus.bulk_transfer_time(iter.input_bytes / chunks as u64); chunks];
            let kernels = vec![k / chunks as u64; chunks];
            segments.push(pipelined_total(&uploads, &kernels));
            evictions.push(if iter.evict.evicted_bytes > 0 {
                bus.bulk_transfer_time(iter.evict.evicted_bytes)
            } else {
                SimTime::ZERO
            });
        }
        let boundaries = evictions.iter().filter(|e| **e > SimTime::ZERO).count();
        let evict_piped = pipelined_total(&segments, &evictions);
        let evict_serial = serial_total(&segments, &evictions);
        let evict_saved = evict_serial - evict_piped;
        evict_table.row(vec![
            chunk_tasks.to_string(),
            boundaries.to_string(),
            evict_piped.to_string(),
            evict_serial.to_string(),
            format!(
                "{evict_saved} ({:.0}%)",
                100.0 * evict_saved.as_secs_f64() / evict_serial.as_secs_f64().max(1e-12)
            ),
        ]);
        evict_json.push(serde_json::json!({
            "chunk_tasks": chunk_tasks,
            "eviction_boundaries": boundaries,
            "pipelined_seconds": evict_piped.as_secs_f64(),
            "serial_seconds": evict_serial.as_secs_f64(),
        }));
    }
    table.note(format!(
        "scale = 1/{scale}; transfer/kernel schedule re-priced with and without overlap"
    ));
    table.print();
    evict_table.note(format!(
        "heap tightened to 1/64 to force mid-run boundaries; eviction DMA \
         drained behind the next iteration's segment (the --evict-overlap \
         pipe) vs strictly alternating; heap = {tight_heap} B"
    ));
    evict_table.print();
    sepo_bench::write_json_mirrored(
        "ablation_pipeline",
        &serde_json::json!({
            "scale": scale,
            "rows": json,
            "eviction_rows": evict_json,
        }),
    );
}
