//! Extension — hardware sensitivity of the SEPO trade-off.
//!
//! The paper's motivation cites the GTX 1080 (8.3 TFLOPS, 320 GB/s, fn. 1)
//! as the era's commodity flagship, and its whole design exists because
//! PCIe is slow relative to device memory. This study re-prices the *same
//! recorded runs* (identical event counts — the workload does not change)
//! under alternative hardware: a Pascal-class GPU, and a sweep of PCIe
//! generations. Measured shape: a faster GPU alone moves almost nothing
//! (these kernels are memory- and transfer-bound, not ALU-bound); a faster
//! interconnect helps dramatically where transfers dominate (PVC's light
//! per-byte kernel: +82% at NVLink-class rates) and modestly where device
//! memory traffic dominates (DNA's 85 k-mer inserts per 100-byte read:
//! +10%) — quantifying which part of SEPO's value is tied to the PCIe
//! bottleneck the paper assumes.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use gpu_sim::spec::SystemSpec;
use sepo_apps::{run_app, AppConfig};
use sepo_baselines::run_cpu_app;
use sepo_bench::report::fmt_speedup;
use sepo_bench::{cpu_total_time, device_heap, gpu_total_time, scale, system, Table};
use sepo_datagen::App;
use std::sync::Arc;

/// A named hardware variant: mutations applied to the paper spec.
struct Variant {
    name: &'static str,
    apply: fn(&mut SystemSpec),
}

fn variants() -> Vec<Variant> {
    vec![
        Variant {
            name: "paper testbed (GTX 780ti, PCIe3 x16)",
            apply: |_| {},
        },
        Variant {
            name: "Pascal-class GPU (2x compute, same bus)",
            apply: |s| {
                s.device.cores = 3_584;
                s.device.clock_hz = 1_600_000_000;
                s.device.mem_bandwidth = 320_000_000_000;
            },
        },
        Variant {
            name: "PCIe4 x16 bus (2x bulk bandwidth)",
            apply: |s| {
                s.pcie.bulk_bandwidth *= 2;
                s.pcie.small_bandwidth *= 2;
            },
        },
        Variant {
            name: "PCIe5-class bus (4x)",
            apply: |s| {
                s.pcie.bulk_bandwidth *= 4;
                s.pcie.small_bandwidth *= 4;
                s.pcie.transaction_latency_ns /= 2;
            },
        },
        Variant {
            name: "NVLink-class interconnect (8x, low latency)",
            apply: |s| {
                s.pcie.bulk_bandwidth *= 8;
                s.pcie.small_bandwidth *= 8;
                s.pcie.transaction_latency_ns /= 4;
            },
        },
    ]
}

fn main() {
    let base = system();
    let scale = scale();
    let heap = device_heap(&base);
    // One single-pass app and one heavily oversubscribed app: the split
    // shows where the bus matters.
    let cases = [(App::PageViewCount, 1usize), (App::DnaAssembly, 3usize)];

    let mut table = Table::new(
        "Extension: hardware sensitivity (same runs, re-priced)",
        &[
            "Hardware variant",
            "PVC #2 speedup (1 pass)",
            "DNA #4 speedup (multi-iter)",
        ],
    );
    let mut json = Vec::new();

    // Record the runs once at the paper spec; event counts are
    // hardware-independent by construction.
    let mut recorded = Vec::new();
    for (app, idx) in cases {
        let ds = app.generate(idx, scale);
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
        let run = run_app(app, &ds, &AppConfig::new(heap), &exec);
        let hist = run.table.full_contention_histogram();
        let cpu = run_cpu_app(app, &ds);
        recorded.push((run, hist, cpu));
    }

    for v in variants() {
        let mut spec = SystemSpec::scaled(scale);
        (v.apply)(&mut spec);
        let mut cells = vec![v.name.to_string()];
        let mut row = serde_json::Map::new();
        row.insert("variant".into(), v.name.into());
        for ((run, hist, cpu), (app, _)) in recorded.iter().zip(cases.iter()) {
            let gpu = gpu_total_time(&run.outcome, hist, &spec);
            let cpu_t = cpu_total_time(&cpu.snapshot, &cpu.contention, &spec);
            let s = cpu_t.ratio(gpu.total);
            cells.push(format!("{} ({} iter)", fmt_speedup(s), gpu.iterations));
            row.insert(format!("{}_speedup", app.name()), serde_json::json!(s));
        }
        table.row(cells);
        json.push(serde_json::Value::Object(row));
    }
    table.note(format!(
        "scale = 1/{scale}; identical executions, only the cost-model rates change"
    ));
    table.note("faster GPUs alone move nothing; faster buses move transfer-bound apps (PVC) far more than device-memory-bound ones (DNA)");
    table.print();
    sepo_bench::write_json(
        "sensitivity",
        &serde_json::json!({ "scale": scale, "rows": json }),
    );
}
