//! Multi-device weak-scaling bench: hash-prefix sharding across N
//! simulated devices with the host-side batching router.
//!
//! For each of the seven §VI applications this runs an unsharded baseline
//! and then the same workload sharded across {1, 2, 4, 8} simulated
//! devices — every run under the parallel-deterministic executor with the
//! cross-layer audit, the shadow sanitizer, and seeded transient faults
//! on (per-shard seeds, so every device sees its own fault stream). Each
//! shard keeps the full single-device heap, so adding devices is weak
//! scaling: per-shard table pressure drops, iteration counts fall, and
//! the sharded makespan (per-iteration max across shards, see
//! [`sepo_bench::sharded_total_time`]) beats the single-device clock.
//!
//! Two gates make this a regression harness rather than a report:
//!
//! - **Image identity.** Every shard count's merged canonical image
//!   ([`sepo_core::canonical_image`]) must equal the unsharded baseline's
//!   — the router plus per-shard ownership filters must be lossless and
//!   duplicate-free. Any divergence exits non-zero.
//! - **Ownership audit.** `run_app_sharded` panics if any shard's table
//!   holds a key outside its hash-prefix slice.
//!
//! Writes `BENCH_shards.json` (repo root and `results/`) with per-app,
//! per-shard-count simulated totals and speedups, stamped with the host's
//! `available_parallelism` (shards run on real threads; a 1-CPU host
//! serializes them, which changes wall-clock but not simulated time).

use gpu_sim::executor::Executor;
use gpu_sim::spec::SystemSpec;
use gpu_sim::{FaultConfig, FaultPlan};
use sepo_apps::sharded::{run_app_sharded, unsharded_image};
use sepo_bench::harness::{
    instrumented_run, require, standard_config, standard_executor, REGRESSION_SCALE,
};
use sepo_bench::{gpu_total_time, sharded_total_time};
use sepo_datagen::App;

/// Records per app — the regression harnesses' shared scale.
const SCALE: u64 = REGRESSION_SCALE;
/// Per-device heap. Small enough that the unsharded run needs several
/// iterations on every app, so sharding has pressure to relieve.
const HEAP_BYTES: u64 = 48 << 10;
/// Tasks per kernel launch.
const CHUNK_TASKS: usize = 512;
/// Base transient-fault seed; shard i of a run draws from seed ^ i.
const FAULT_SEED: u64 = 0x5AAD_ED01;
/// The weak-scaling sweep.
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn shard_executors(n: u32) -> Vec<Executor> {
    (0..n)
        .map(|i| {
            standard_executor(Some(FaultPlan::new(FaultConfig::standard(
                FAULT_SEED ^ u64::from(i),
            ))))
        })
        .collect()
}

fn main() {
    let spec = SystemSpec::scaled(SCALE);
    let cpu_warning = sepo_bench::single_cpu_warning("shards");
    let mut rows = Vec::new();
    let mut failed = false;
    let mut speedup_at_4 = Vec::new();

    for app in App::ALL {
        let ds = app.generate(0, SCALE);

        // Unsharded baseline: same executor mix, one device.
        let exec = standard_executor(Some(FaultPlan::new(FaultConfig::standard(FAULT_SEED))));
        let cfg = standard_config(HEAP_BYTES, CHUNK_TASKS);
        let baseline = instrumented_run(app, &ds, &cfg, &exec);
        let baseline_t = gpu_total_time(
            &baseline.run.outcome,
            &baseline.run.table.contention_histogram(),
            &spec,
        );
        let want = unsharded_image(&baseline.run);

        let mut sweep = Vec::new();
        for n in SHARD_COUNTS {
            let cfgs: Vec<_> = (0..n)
                .map(|_| standard_config(HEAP_BYTES, CHUNK_TASKS))
                .collect();
            let execs = shard_executors(n);
            let sharded = run_app_sharded(app, &ds, &cfgs, &execs);

            let image_ok = require(
                app.name(),
                &format!("merged image at {n} shards identical to unsharded"),
                sharded.image == want,
            );
            failed |= !image_ok;

            let parts: Vec<_> = sharded
                .shards
                .iter()
                .map(|r| (&r.outcome, r.table.contention_histogram()))
                .collect();
            let refs: Vec<_> = parts.iter().map(|(o, h)| (*o, h)).collect();
            let timing = sharded_total_time(&refs, &spec);
            let speedup = baseline_t.total.as_secs_f64() / timing.total.as_secs_f64().max(1e-12);
            if n == 4 {
                speedup_at_4.push((app, speedup));
            }
            println!(
                "{:>15} x{n}: {:>2} boundary iterations, {:>5} routed records, \
                 {:.6}s simulated ({speedup:.2}x vs 1 device){}",
                app.name(),
                timing.iterations,
                sharded.routed_records.iter().sum::<usize>(),
                timing.total.as_secs_f64(),
                if image_ok { "" } else { "  <-- DIVERGED" },
            );
            sweep.push(serde_json::json!({
                "shards": n,
                "iterations_makespan": timing.iterations,
                "iterations_per_shard": sharded.shards.iter().map(|r| r.iterations()).collect::<Vec<_>>(),
                "routed_records": sharded.routed_records,
                "simulated_seconds": timing.total.as_secs_f64(),
                "kernel_seconds": timing.kernel.as_secs_f64(),
                "transfer_seconds": timing.transfers.as_secs_f64(),
                "speedup_vs_unsharded": speedup,
                "image_identical": image_ok,
            }));
        }
        rows.push(serde_json::json!({
            "app": app.name(),
            "unsharded_iterations": baseline.iterations(),
            "unsharded_seconds": baseline_t.total.as_secs_f64(),
            "sweep": sweep,
        }));
    }

    let faster_at_4 = speedup_at_4.iter().filter(|(_, s)| *s > 1.0).count();
    println!(
        "\n{faster_at_4}/{} apps faster than a single device at 4 shards",
        App::ALL.len()
    );
    let report = serde_json::json!({
        "bench": "multi-device sharded execution: hash-prefix weak scaling",
        "scale": SCALE,
        "heap_bytes_per_shard": HEAP_BYTES,
        "chunk_tasks": CHUNK_TASKS,
        "fault_seed": FAULT_SEED,
        "shard_counts": SHARD_COUNTS,
        "available_parallelism": sepo_bench::host_parallelism(),
        "single_cpu_warning": cpu_warning,
        "apps": rows,
        "apps_faster_at_4_shards": faster_at_4,
        "all_identical": !failed,
    });
    sepo_bench::write_json_mirrored("BENCH_shards", &report);
    println!("wrote BENCH_shards.json");
    if failed {
        std::process::exit(1);
    }
}
