//! Hot-bucket contention smoke check: warp combiner on vs off.
//!
//! Runs Word Count over Zipf-skewed text (the §VI-B contention-bound
//! workload) twice — with and without the per-warp software combiner — and
//! compares what actually reached the hash table: per-bucket insert
//! touches, chain hops walked, head-CAS retries, and the combiner's own
//! hit/flush/overflow counters. The combined results must stay
//! byte-identical; the combiner is a pure traffic optimisation.
//!
//! Writes `BENCH_contention.json` (repo root and `results/`) so the
//! contention trajectory is tracked from PR to PR, and exits non-zero if
//! the combiner stops absorbing traffic or perturbs results.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::{Metrics, Snapshot};
use sepo_apps::{wordcount, AppConfig};
use sepo_datagen::text::{generate, TextConfig};
use std::sync::Arc;

/// Target text volume. Small enough for a CI smoke step, large enough
/// that the hottest words dominate whole warps.
const TARGET_BYTES: u64 = 256 * 1024;
/// Distinct words: few enough that updates concentrate (§VI-B).
const VOCAB: usize = 3_000;
/// Device heap: ample, so both runs complete in one iteration and the
/// comparison isolates insert traffic rather than eviction behaviour.
const HEAP_BYTES: u64 = 4 << 20;

struct Run {
    snapshot: Snapshot,
    iterations: u32,
    /// Sorted `<word, count>` results serialized to a JSON string.
    results_json: String,
    /// Per-bucket insert-touch histogram facts.
    touches: u64,
    hottest_bucket: u64,
    chain_hops: u64,
}

fn run_once(ds: &sepo_datagen::Dataset, combiner: bool) -> Run {
    let metrics = Arc::new(Metrics::new());
    let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
    let cfg = AppConfig::new(HEAP_BYTES).with_combiner(combiner);
    let run = wordcount::run(ds, &cfg, &exec);
    let hist = run.table.contention_histogram();
    let mut results: Vec<(Vec<u8>, u64)> = run.table.collect_combining();
    results.sort();
    let mut map = serde_json::Map::new();
    for (k, v) in &results {
        map.insert(
            String::from_utf8_lossy(k).into_owned(),
            serde_json::json!(v),
        );
    }
    let snapshot = metrics.snapshot();
    Run {
        iterations: run.iterations(),
        results_json: serde_json::to_string(&serde_json::Value::Object(map))
            .expect("serialize results"),
        touches: hist.total_updates(),
        hottest_bucket: hist.max_count(),
        chain_hops: snapshot.chain_hops,
        snapshot,
    }
}

fn main() {
    let ds = generate(
        &TextConfig {
            target_bytes: TARGET_BYTES,
            vocab_size: VOCAB,
            ..Default::default()
        },
        17,
    );
    let total_pairs: u64 = wordcount::reference(&ds).values().sum();

    let off = run_once(&ds, false);
    let on = run_once(&ds, true);

    let hit_rate = on.snapshot.combiner_hits as f64 / total_pairs as f64;
    println!(
        "word count, {} emitted pairs over {} records (Zipf text, vocab {VOCAB})",
        total_pairs,
        ds.len()
    );
    for (label, r) in [("combiner off", &off), ("combiner on", &on)] {
        println!(
            "{label:>14}: {:>8} bucket touches (hottest {:>6}) {:>8} chain hops \
             {:>4} CAS retries",
            r.touches, r.hottest_bucket, r.chain_hops, r.snapshot.head_cas_retries
        );
    }
    println!(
        "{:>14}: {:.1}% of emits absorbed in-warp, {} batched flushes, {} overflows",
        "combiner",
        hit_rate * 100.0,
        on.snapshot.combiner_flushes,
        on.snapshot.combiner_overflows
    );

    let results_identical = off.results_json == on.results_json;
    let report = serde_json::json!({
        "bench": "hot-bucket contention, warp combiner on vs off",
        "workload": "wordcount",
        "target_bytes": TARGET_BYTES,
        "vocab_size": VOCAB,
        "emitted_pairs": total_pairs,
        "combiner_off": serde_json::json!({
            "bucket_touches": off.touches,
            "hottest_bucket_touches": off.hottest_bucket,
            "chain_hops": off.chain_hops,
            "head_cas_retries": off.snapshot.head_cas_retries,
            "iterations": off.iterations,
        }),
        "combiner_on": serde_json::json!({
            "bucket_touches": on.touches,
            "hottest_bucket_touches": on.hottest_bucket,
            "chain_hops": on.chain_hops,
            "head_cas_retries": on.snapshot.head_cas_retries,
            "iterations": on.iterations,
            "combiner_hits": on.snapshot.combiner_hits,
            "combiner_flushes": on.snapshot.combiner_flushes,
            "combiner_overflows": on.snapshot.combiner_overflows,
            "smem_bytes": on.snapshot.smem_bytes,
        }),
        "combiner_hit_rate": hit_rate,
        "touch_reduction": off.touches as f64 / on.touches.max(1) as f64,
        "results_identical": results_identical,
    });
    sepo_bench::write_json_mirrored("BENCH_contention", &report);
    println!("\nwrote BENCH_contention.json");

    let mut failed = false;
    if !results_identical {
        eprintln!("FAIL: combined results differ between combiner on and off");
        failed = true;
    }
    if on.iterations != off.iterations {
        eprintln!(
            "FAIL: iteration counts differ (on {} vs off {})",
            on.iterations, off.iterations
        );
        failed = true;
    }
    if on.touches >= off.touches {
        eprintln!(
            "FAIL: combiner did not reduce bucket insert touches ({} vs {})",
            on.touches, off.touches
        );
        failed = true;
    }
    if on.chain_hops > off.chain_hops {
        eprintln!(
            "FAIL: combiner increased chain hops ({} vs {})",
            on.chain_hops, off.chain_hops
        );
        failed = true;
    }
    if hit_rate < 0.10 {
        eprintln!("FAIL: combiner hit rate {:.1}% under 10%", hit_rate * 100.0);
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
