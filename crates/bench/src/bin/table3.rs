//! Table III — demand paging lower bound vs the SEPO hash table (§VI-D).
//!
//! Methodology, exactly as the paper's: instrument PVC to record its
//! hash-table access pattern; replay the trace through an LRU
//! page-replacement simulation for a descending ladder of assumed free GPU
//! memory; multiply replacements by page size for a lower-bound PCIe
//! transfer time; and, in the last column, run PVC *with our hash table*
//! given the same amount of memory and report its total execution time.
//!
//! Shape to reproduce: at full residency everything is 0; as memory
//! shrinks, 1 MB-page transfer time explodes (hundreds of seconds at paper
//! scale), 4 KB pages are far cheaper but still overtake the SEPO total
//! once the table is ~1.5x larger than memory, while the SEPO column grows
//! only gently (1.22 s → 2.02 s in the paper).

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use gpu_sim::pcie::PcieBus;
use sepo_apps::{pvc, AppConfig};
use sepo_baselines::{paging_lower_bounds, record_pvc_trace};
use sepo_bench::report::fmt_bytes;
use sepo_bench::{gpu_total_time, scale, system, Table};
use sepo_datagen::App;
use std::sync::Arc;

fn main() {
    let spec = system();
    let scale = scale();
    // The paper's trace populates a 1.2 GB table; dataset #4 of PVC at the
    // active scale produces the equivalent scaled table.
    let ds = App::PageViewCount.generate(3, scale);
    let (trace, table_bytes) = record_pvc_trace(&ds);

    // Memory ladder mirroring the paper's 1200 → 400 MB in steps of 100 MB,
    // expressed as fractions of the traced table footprint.
    let footprint = trace.footprint().max(1);
    let memories: Vec<u64> = (4..=12).rev().map(|i| footprint * i / 12).collect();
    // The paper's literal page sizes: 1 MB, 128 KB and the hardware 4 KB
    // page. Pages are physical constants and are NOT scaled — which is why
    // at high scale the 1 MB column thrashes catastrophically (it does at
    // paper scale too: 2148 s in the paper's last row).
    let page_sizes: Vec<u64> = vec![1_048_576, 131_072, 4_096];
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    let rows = paging_lower_bounds(&trace, &memories, &page_sizes, &bus);

    let mut table = Table::new(
        "Table III: demand-paging lower-bound transfer time vs our hash table (PVC)",
        &[
            "Assumed GPU memory",
            &format!("Transfer ({})", fmt_bytes(page_sizes[0])),
            &format!("Transfer ({})", fmt_bytes(page_sizes[1])),
            &format!("Transfer ({})", fmt_bytes(page_sizes[2])),
            "Total exec with our hash table",
        ],
    );
    let mut json = Vec::new();
    for row in &rows {
        // SEPO run with the same amount of device memory for its heap.
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
        let run = pvc::run(&ds, &AppConfig::new(row.assumed_memory), &exec);
        let sepo = gpu_total_time(&run.outcome, &run.table.full_contention_histogram(), &spec);
        table.row(vec![
            fmt_bytes(row.assumed_memory),
            row.transfer_times[0].1.to_string(),
            row.transfer_times[1].1.to_string(),
            row.transfer_times[2].1.to_string(),
            format!("{} ({} iters)", sepo.total, sepo.iterations),
        ]);
        json.push(serde_json::json!({
            "assumed_memory_bytes": row.assumed_memory,
            "transfers": row.transfer_times.iter().map(|(ps, t)| {
                serde_json::json!({ "page_size": ps, "seconds": t.as_secs_f64() })
            }).collect::<Vec<_>>(),
            "sepo_seconds": sepo.total.as_secs_f64(),
            "sepo_iterations": sepo.iterations,
        }));
    }
    table.note(format!(
        "scale = 1/{scale}; PVC dataset #4; traced table = {}",
        fmt_bytes(table_bytes)
    ));
    table.note("transfer times are lower bounds (wire time only), as in the paper");
    table.print();
    sepo_bench::write_json(
        "table3",
        &serde_json::json!({ "scale": scale, "table_bytes": table_bytes, "rows": json }),
    );
}
