//! Figure 6 — application speedup over CPU multi-threaded implementations.
//!
//! "Figure 6 depicts the achieved speedups of the GPU-based applications
//! over their CPU-based multi-threaded counterparts for different dataset
//! sizes. The numbers shown on top of the bars indicate the number of
//! iterations that were necessary to successfully store all KV pairs …
//! For the last three, the baseline is Phoenix++."
//!
//! Expected shape: healthy speedups for Netflix, DNA Assembly, PVC, Patent
//! Citation and Geo Location; Inverted Index held back by warp divergence;
//! Word Count held back by duplicate-key contention; speedups degrade
//! gracefully (not collapse) as larger datasets force more SEPO iterations.

use gpu_sim::clock::SimTime;
use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::Metrics;
use sepo_apps::{run_app, AppConfig};
use sepo_baselines::{run_cpu_app, run_phoenix};
use sepo_bench::report::{fmt_bytes, fmt_speedup, BarChart};
use sepo_bench::{cpu_total_time, device_heap, gpu_total_time, scale, system, GpuTiming, Table};
use sepo_datagen::App;
use std::sync::{Arc, Mutex};

/// One fully-computed (application × dataset) cell, ready to render.
struct Cell {
    app: App,
    idx: usize,
    input_bytes: u64,
    gpu: GpuTiming,
    cpu: SimTime,
    speedup: f64,
}

fn compute_cell(app: App, idx: usize, scale: u64, heap: u64) -> Cell {
    let spec = system();
    let ds = app.generate(idx, scale);
    // GPU/SEPO side. Each cell owns its table and metrics and runs its
    // warps in deterministic order, so numbers are independent of how many
    // cells execute concurrently around it.
    let metrics = Arc::new(Metrics::new());
    let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
    let run = run_app(app, &ds, &AppConfig::new(heap), &exec);
    let hist = run.table.full_contention_histogram();
    let gpu = gpu_total_time(&run.outcome, &hist, &spec);
    // CPU side: Phoenix++ for the MapReduce apps, the shared-table
    // CPU implementation for the stand-alone apps.
    let cpu = if App::MAPREDUCE.contains(&app) {
        let p = run_phoenix(app, &ds);
        cpu_total_time(&p.snapshot, &p.contention, &spec)
    } else {
        let b = run_cpu_app(app, &ds);
        cpu_total_time(&b.snapshot, &b.contention, &spec)
    };
    let speedup = cpu.ratio(gpu.total);
    Cell {
        app,
        idx,
        input_bytes: ds.size_bytes(),
        gpu,
        cpu,
        speedup,
    }
}

fn main() {
    let spec = system();
    let scale = scale();
    let heap = device_heap(&spec);
    let mut table = Table::new(
        "Figure 6: speedup over CPU multi-threaded implementation",
        &[
            "Application",
            "Dataset",
            "Input",
            "Iterations",
            "GPU (sim)",
            "CPU (sim)",
            "Speedup",
        ],
    );
    let mut json = Vec::new();
    let mut speedups = Vec::new();
    let mut chart = BarChart::new("Figure 6 (rendered): speedup bars, iteration counts on top")
        .with_reference(1.0);

    // All (application × dataset) cells are independent: fan them out on
    // the shared worker pool and render in order afterwards. Determinism
    // per cell is by construction (see `ExecMode::ParallelDeterministic`).
    let n_cells = App::ALL.len() * 4;
    let cells: Mutex<Vec<Option<Cell>>> = Mutex::new((0..n_cells).map(|_| None).collect());
    gpu_sim::pool::scope(|s| {
        for (a, app) in App::ALL.into_iter().enumerate() {
            for idx in 0..4 {
                let cells = &cells;
                s.spawn(move || {
                    let cell = compute_cell(app, idx, scale, heap);
                    cells.lock().unwrap()[a * 4 + idx] = Some(cell);
                });
            }
        }
    });

    let cells: Vec<Cell> = cells
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|c| c.expect("every figure-6 cell computed"))
        .collect();
    for app in App::ALL {
        let mut bars = Vec::new();
        for cell in cells.iter().filter(|c| c.app == app) {
            let (idx, gpu, cpu, speedup) = (cell.idx, &cell.gpu, cell.cpu, cell.speedup);
            speedups.push(speedup);
            table.row(vec![
                app.name().to_string(),
                format!("#{}", idx + 1),
                fmt_bytes(cell.input_bytes),
                gpu.iterations.to_string(),
                gpu.total.to_string(),
                cpu.to_string(),
                fmt_speedup(speedup),
            ]);
            bars.push((
                format!("#{}", idx + 1),
                speedup,
                format!("({} iter)", gpu.iterations),
            ));
            json.push(serde_json::json!({
                "app": app.name(),
                "dataset": idx + 1,
                "input_bytes": cell.input_bytes,
                "iterations": gpu.iterations,
                "gpu_seconds": gpu.total.as_secs_f64(),
                "gpu_kernel_seconds": gpu.kernel.as_secs_f64(),
                "gpu_transfer_seconds": gpu.transfers.as_secs_f64(),
                "gpu_contention_seconds": gpu.contention.as_secs_f64(),
                "cpu_seconds": cpu.as_secs_f64(),
                "speedup": speedup,
            }));
        }
        chart.group(app.name(), bars);
    }

    chart.print();
    let cpu_warning = sepo_bench::single_cpu_warning("figure6");
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    table.note(format!("scale = 1/{scale} (capacities and datasets)"));
    table.note(format!("device heap = {}", fmt_bytes(heap)));
    table.note(format!(
        "average speedup = {avg:.2} (paper reports 3.5 on average)"
    ));
    table.print();
    sepo_bench::write_json(
        "figure6",
        &serde_json::json!({
            "scale": scale,
            "average_speedup": avg,
            "available_parallelism": sepo_bench::host_parallelism(),
            "single_cpu_warning": cpu_warning,
            "rows": json,
        }),
    );
}
