//! Extension experiment — SEPO lookups on a larger-than-memory table.
//!
//! The paper leaves lookup-side SEPO "to the reader as a mental exercise"
//! (§IV-C); `sepo_core::lookup` implements it: the host-resident table is
//! streamed back to the device in heap-sized segments, and pending queries
//! complete as their keys become resident. This bench sweeps the device
//! heap size for a fixed table and Zipf-skewed query mix, reporting rounds,
//! paged-in volume and simulated time — the lookup-side analogue of the
//! graceful-degradation story.

use gpu_sim::cost::GpuCostModel;
use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::{ContentionHistogram, Metrics};
use gpu_sim::pcie::PcieBus;
use gpu_sim::SimTime;
use sepo_apps::{pvc, AppConfig};
use sepo_bench::report::fmt_bytes;
use sepo_bench::{scale, system, Table};
use sepo_datagen::{weblog, App, Rng, Zipf};
use std::sync::Arc;

fn main() {
    let spec = system();
    let scale = scale();
    // Build the table once from PVC dataset #2.
    let ds = App::PageViewCount.generate(1, scale);
    let metrics = Arc::new(Metrics::new());
    let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
    let build = pvc::run(&ds, &AppConfig::new(64 << 20), &exec);
    let (_, table_bytes) = build.table.host_footprint();

    // Zipf-skewed query mix over the URL universe (80% present, 20% absent).
    let mut rng = Rng::new(4242);
    let n_urls = ds.len() / 3; // matches the generator's derivation
    let zipf = Zipf::new(n_urls.max(1), 0.9);
    let owned: Vec<String> = (0..20_000)
        .map(|i| {
            if i % 5 == 4 {
                format!("http://absent.example.com/{i}")
            } else {
                weblog::url(zipf.sample(&mut rng))
            }
        })
        .collect();
    let queries: Vec<&[u8]> = owned.iter().map(|s| s.as_bytes()).collect();

    let gpu = GpuCostModel::new(spec.device.clone());
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    let empty = ContentionHistogram::from_counts(std::iter::empty::<u64>());

    let mut table = Table::new(
        "Extension: SEPO lookup phase vs device-heap size (PVC table)",
        &["Heap / table", "Rounds", "Paged-in", "Hits", "Sim time"],
    );
    let mut json = Vec::new();
    for divisor in [1u64, 2, 4, 8] {
        let heap = (table_bytes / divisor).max(64 * 1024);
        // Rebuild the table with this heap so the lookup phase stages
        // through it (contents identical; the build side may iterate).
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::ParallelDeterministic, Arc::clone(&metrics));
        let run = pvc::run(&ds, &AppConfig::new(heap), &exec);
        let out = run.table.lookup_phase(&exec, &queries);
        // Price the phase: per round, paged-in transfer overlapped with the
        // lookup kernel.
        let mut total = SimTime::ZERO;
        for r in &out.rounds {
            let load = bus.bulk_transfer_time(r.loaded_bytes);
            let kernel = gpu.kernel_time(&r.kernel, &empty);
            total += load.max(kernel) + SimTime::from_nanos(1_200);
        }
        table.row(vec![
            format!("{} / {}", fmt_bytes(heap), fmt_bytes(table_bytes)),
            out.n_rounds().to_string(),
            fmt_bytes(out.total_loaded_bytes()),
            format!("{}/{}", out.hits(), queries.len()),
            total.to_string(),
        ]);
        json.push(serde_json::json!({
            "heap_bytes": heap,
            "rounds": out.n_rounds(),
            "loaded_bytes": out.total_loaded_bytes(),
            "hits": out.hits(),
            "sim_seconds": total.as_secs_f64(),
        }));
    }
    table.note(format!(
        "scale = 1/{scale}; 20k Zipf-skewed queries, 20% absent"
    ));
    table.note("queries postpone until their table segment is paged in (SS IV-C mental exercise)");
    table.print();
    sepo_bench::write_json(
        "lookup_phase",
        &serde_json::json!({ "scale": scale, "rows": json }),
    );
}
