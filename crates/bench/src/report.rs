//! Plain-text table rendering and JSON result persistence.
//!
//! Every regeneration binary prints a fixed-width table mirroring the
//! paper's layout and writes the same data as JSON under `results/` so
//! EXPERIMENTS.md can reference machine-readable numbers.

use serde_json::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (scale, substitutions).
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as fixed-width text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, " {:width$} |", c, width = widths[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Serialize `value` to `results/<name>.json` (creating the directory).
/// Failures are reported but non-fatal: the printed table is the primary
/// artifact.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("results written to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// [`write_json`], then byte-copy the written file to `<name>.json` in the
/// current directory. Trajectory files (`BENCH_*.json`) live both at the
/// repo root and under `results/`; serializing once and copying the bytes
/// guarantees the two copies cannot drift.
pub fn write_json_mirrored<T: Serialize>(name: &str, value: &T) {
    write_json(name, value);
    let src = Path::new("results").join(format!("{name}.json"));
    let dst = format!("{name}.json");
    if !src.exists() {
        return; // write_json already reported the failure
    }
    if let Err(e) = std::fs::copy(&src, &dst) {
        eprintln!("warning: cannot mirror {} to {dst}: {e}", src.display());
    }
}

/// An ASCII bar chart — the textual rendering of the paper's figures.
/// Bars are grouped (one group per application, one bar per dataset) and
/// annotated, like Fig. 6's iteration counts atop the bars.
/// One bar: (label, value, annotation).
pub type Bar = (String, f64, String);

#[derive(Debug, Clone)]
pub struct BarChart {
    pub title: String,
    /// (group label, bars).
    pub groups: Vec<(String, Vec<Bar>)>,
    /// A horizontal reference line (e.g. speedup = 1.0).
    pub reference: Option<f64>,
}

impl BarChart {
    pub fn new(title: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            groups: Vec::new(),
            reference: None,
        }
    }

    pub fn with_reference(mut self, r: f64) -> Self {
        self.reference = Some(r);
        self
    }

    pub fn group(&mut self, label: impl Into<String>, bars: Vec<Bar>) {
        self.groups.push((label.into(), bars));
    }

    /// Render with horizontal bars scaled to the maximum value.
    pub fn render(&self) -> String {
        const WIDTH: usize = 48;
        let max = self
            .groups
            .iter()
            .flat_map(|(_, bars)| bars.iter().map(|&(_, v, _)| v))
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (glabel, bars) in &self.groups {
            let _ = writeln!(out, "{glabel}");
            for (blabel, value, note) in bars {
                let filled = ((value / max) * WIDTH as f64).round() as usize;
                let mut bar: String = "#".repeat(filled.min(WIDTH));
                if let Some(r) = self.reference {
                    let at = ((r / max) * WIDTH as f64).round() as usize;
                    if at < WIDTH {
                        while bar.len() <= at {
                            bar.push(' ');
                        }
                        // Mark the reference line position.
                        bar.replace_range(at..at + 1, "|");
                    }
                }
                let _ = writeln!(
                    out,
                    "  {blabel:>4} {bar:<w$} {value:>6.2} {note}",
                    w = WIDTH + 1
                );
            }
        }
        if let Some(r) = self.reference {
            let _ = writeln!(out, "  ('|' marks {r:.1})");
        }
        out
    }

    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a ratio as the paper prints speedups (e.g. `2.42X`).
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}X")
}

/// Format a byte count in the unit Table I uses.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1_000_000_000 {
        format!("{:.1} GB", b as f64 / 1e9)
    } else if b >= 1_000_000 {
        format!("{:.1} MB", b as f64 / 1e6)
    } else if b >= 1_000 {
        format!("{:.1} KB", b as f64 / 1e3)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["App", "Speedup"]);
        t.row(vec!["Page View Count".into(), "3.50X".into()]);
        t.row(vec!["WC".into(), "1.05X".into()]);
        t.note("scale = 256");
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| Page View Count | 3.50X   |"));
        assert!(s.contains("note: scale = 256"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn bar_chart_renders_scaled_bars() {
        let mut c = BarChart::new("Speedups").with_reference(1.0);
        c.group(
            "PVC",
            vec![
                ("#1".into(), 4.0, "(1)".into()),
                ("#4".into(), 2.0, "(4)".into()),
            ],
        );
        let s = c.render();
        assert!(s.contains("== Speedups =="));
        assert!(s.contains("PVC"));
        // The 4.0 bar is twice the 2.0 bar.
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&ch| ch == '#').count();
        let b1 = lines.iter().find(|l| l.contains("#1")).unwrap();
        let b4 = lines.iter().find(|l| l.contains("#4")).unwrap();
        assert!(count(b1) >= 2 * count(b4) - 2);
        assert!(s.contains("'|' marks 1.0"));
    }

    #[test]
    fn empty_chart_is_harmless() {
        let c = BarChart::new("empty");
        assert!(c.render().contains("empty"));
    }

    #[test]
    fn mirrored_write_produces_identical_bytes() {
        let name = "mirror_roundtrip_tmp";
        write_json_mirrored(name, &serde_json::json!({"b": 1, "a": 2}));
        let under_results = std::path::PathBuf::from(format!("results/{name}.json"));
        let at_root = std::path::PathBuf::from(format!("{name}.json"));
        let a = std::fs::read(&under_results).expect("results copy written");
        let b = std::fs::read(&at_root).expect("root mirror written");
        let _ = std::fs::remove_file(&under_results);
        let _ = std::fs::remove_file(&at_root);
        let _ = std::fs::remove_dir("results"); // only if the test created it
        assert_eq!(a, b, "mirror must be a byte copy");
        // Key order survives serialization (insertion-ordered maps).
        assert_eq!(String::from_utf8_lossy(&a).find("\"b\""), Some(4));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_speedup(2.4231), "2.42X");
        assert_eq!(fmt_bytes(5_800_000_000), "5.8 GB");
        assert_eq!(fmt_bytes(22_656_250), "22.7 MB");
        assert_eq!(fmt_bytes(900), "900 B");
    }
}
