//! Assembling simulated end-to-end times from run accounting.
//!
//! The paper's execution times "include the input data transfer from CPU to
//! GPU and transfer of the hash table from GPU to CPU" (§VI-B); the GPU
//! total therefore composes, per SEPO iteration, the BigKernel-pipelined
//! overlap of input chunk uploads with kernel execution, plus the
//! iteration-boundary heap eviction transfer, plus (once per run) the
//! serialized-atomic contention penalty.

use gpu_sim::clock::SimTime;
use gpu_sim::cost::{CpuCostModel, GpuCostModel};
use gpu_sim::metrics::{ContentionHistogram, Metrics, Snapshot};
use gpu_sim::pcie::PcieBus;
use gpu_sim::pipeline::{pipelined_total, serial_total};
use gpu_sim::spec::SystemSpec;
use sepo_core::sepo::SepoOutcome;
use std::sync::Arc;

/// Breakdown of a simulated GPU run.
#[derive(Debug, Clone, Copy)]
pub struct GpuTiming {
    /// End-to-end simulated time.
    pub total: SimTime,
    /// Kernel execution (compute/memory/divergence), all iterations.
    pub kernel: SimTime,
    /// Input upload time hidden or exposed by the pipeline, plus eviction
    /// and final result downloads.
    pub transfers: SimTime,
    /// Serialized-atomic contention penalty.
    pub contention: SimTime,
    /// SEPO iterations.
    pub iterations: u32,
}

fn empty_hist() -> ContentionHistogram {
    ContentionHistogram::from_counts(std::iter::empty::<u64>())
}

/// Simulated end-to-end time of a SEPO GPU run.
pub fn gpu_total_time(
    outcome: &SepoOutcome,
    contention: &ContentionHistogram,
    spec: &SystemSpec,
) -> GpuTiming {
    let gpu = GpuCostModel::new(spec.device.clone());
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    let mut kernel_total = SimTime::ZERO;
    let mut segments = Vec::with_capacity(outcome.iterations.len());
    let mut evictions = Vec::with_capacity(outcome.iterations.len());
    for iter in &outcome.iterations {
        let k = gpu.kernel_time(&iter.kernel, &empty_hist());
        kernel_total += k;
        let chunks = iter.chunks.max(1) as usize;
        let per_chunk_upload = bus.bulk_transfer_time(iter.input_bytes / chunks as u64);
        let per_chunk_kernel = k / chunks as u64;
        let uploads = vec![per_chunk_upload; chunks];
        let kernels = vec![per_chunk_kernel; chunks];
        segments.push(pipelined_total(&uploads, &kernels));
        evictions.push(if iter.evict.evicted_bytes > 0 {
            bus.bulk_transfer_time(iter.evict.evicted_bytes)
        } else {
            SimTime::ZERO
        });
    }
    // Compose each iteration's pipelined upload/kernel segment with its
    // boundary eviction. Synchronous boundaries alternate strictly:
    // segment, eviction, segment, … With `evict_overlap` the eviction pipe
    // lets boundary i's DMA drain behind segment i+1, which is exactly the
    // BigKernel makespan recurrence with segments as the "transfer" lane
    // and evictions as the "compute" lane:
    // s_1 + Σ max(s_i, e_{i-1}) + e_n.
    let body = if outcome.evict_overlap {
        pipelined_total(&segments, &evictions)
    } else {
        serial_total(&segments, &evictions)
    };
    let final_download = if outcome.final_evict.evicted_bytes > 0 {
        bus.bulk_transfer_time(outcome.final_evict.evicted_bytes)
    } else {
        SimTime::ZERO
    };
    let contention_t = gpu.contention_time(contention);
    let transfer_total = (body - kernel_total) + final_download;
    let total = body + final_download + contention_t;
    GpuTiming {
        total,
        kernel: kernel_total,
        transfers: transfer_total,
        contention: contention_t,
        iterations: outcome.n_iterations(),
    }
}

/// Simulated time of a CPU multi-threaded run (no transfers, host rates,
/// 8-thread contention threshold).
pub fn cpu_total_time(
    snapshot: &Snapshot,
    contention: &ContentionHistogram,
    spec: &SystemSpec,
) -> SimTime {
    CpuCostModel::new(spec.host.clone()).phase_time(snapshot, contention)
}

/// Simulated time of a single-pass GPU run described only by its event
/// snapshot (used for the MapCG baseline, which has no SEPO iteration
/// structure): pipelined input upload overlapping the kernel, one result
/// download, plus contention.
pub fn single_pass_gpu_time(
    snapshot: &Snapshot,
    contention: &ContentionHistogram,
    input_bytes: u64,
    output_bytes: u64,
    spec: &SystemSpec,
) -> SimTime {
    let gpu = GpuCostModel::new(spec.device.clone());
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    let kernel = gpu.kernel_time(snapshot, &empty_hist());
    let upload = bus.bulk_transfer_time(input_bytes);
    let download = bus.bulk_transfer_time(output_bytes);
    upload.max(kernel) + download + gpu.contention_time(contention)
}

/// Simulated time of a pinned-CPU-memory-heap run (Fig. 7): kernels at GPU
/// rates, heap traffic as small PCIe transactions, input uploaded once.
pub fn pinned_total_time(
    snapshot: &Snapshot,
    contention: &ContentionHistogram,
    input_bytes: u64,
    spec: &SystemSpec,
) -> SimTime {
    let gpu = GpuCostModel::new(spec.device.clone());
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    // Kernel-side work without the remote traffic (which the snapshot
    // already routed into the pcie_small counters).
    let kernel = gpu.kernel_time(snapshot, &empty_hist());
    // Remote heap accesses: GPU memory-level parallelism keeps on the
    // order of a hundred small transactions in flight across the bus.
    let remote = bus.small_transactions_time(
        snapshot.pcie_small_transactions,
        snapshot.pcie_small_bytes,
        96,
    );
    let upload = bus.bulk_transfer_time(input_bytes);
    let contention_t = gpu.contention_time(contention);
    upload.max(kernel) + remote + contention_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::executor::{ExecMode, Executor};
    use sepo_apps::{pvc, AppConfig};
    use sepo_datagen::App;

    fn small_run_cfg(heap: u64, overlap: bool) -> (SepoOutcome, ContentionHistogram, u64) {
        let ds = App::PageViewCount.generate(0, 8192);
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::Deterministic, Arc::clone(&metrics));
        let run = pvc::run(
            &ds,
            &AppConfig::new(heap).with_evict_overlap(overlap),
            &exec,
        );
        let hist = run.table.contention_histogram();
        (run.outcome, hist, ds.size_bytes())
    }

    fn small_run(heap: u64) -> (SepoOutcome, ContentionHistogram, u64) {
        small_run_cfg(heap, false)
    }

    #[test]
    fn gpu_timing_composes_positive_terms() {
        let spec = SystemSpec::scaled(8192);
        let (outcome, hist, _) = small_run(1 << 20);
        let t = gpu_total_time(&outcome, &hist, &spec);
        assert!(t.total > SimTime::ZERO);
        assert!(t.kernel > SimTime::ZERO);
        assert!(t.transfers > SimTime::ZERO);
        assert!(t.total >= t.kernel);
        assert_eq!(t.iterations, outcome.n_iterations());
    }

    #[test]
    fn more_iterations_cost_more_time() {
        let spec = SystemSpec::scaled(8192);
        let (one_pass, h1, _) = small_run(4 << 20);
        let (multi, h2, _) = small_run(8 * 1024);
        assert!(multi.n_iterations() > one_pass.n_iterations());
        let t1 = gpu_total_time(&one_pass, &h1, &spec);
        let t2 = gpu_total_time(&multi, &h2, &spec);
        assert!(
            t2.total > t1.total,
            "extra SEPO iterations must cost simulated time: {} vs {}",
            t2.total,
            t1.total
        );
    }

    #[test]
    fn overlapped_eviction_prices_below_serial_on_identical_trajectories() {
        let spec = SystemSpec::scaled(8192);
        let (serial, hs, _) = small_run_cfg(8 * 1024, false);
        let (overlap, ho, _) = small_run_cfg(8 * 1024, true);
        assert!(serial.n_iterations() > 1, "the fixture must evict");
        assert_eq!(
            serial.iterations, overlap.iterations,
            "the pipe must not change the trajectory it prices"
        );
        let ts = gpu_total_time(&serial, &hs, &spec);
        let to = gpu_total_time(&overlap, &ho, &spec);
        assert_eq!(ts.kernel, to.kernel);
        assert!(
            to.total < ts.total,
            "hiding eviction DMA behind compute must save simulated time: \
             {} vs {}",
            to.total,
            ts.total
        );
        // The saving is bounded by what was eligible for hiding: the
        // overlapped makespan can never drop below the segments alone.
        assert!(to.total >= ts.kernel);
    }

    #[test]
    fn graceful_degradation_not_cliff() {
        // The headline claim: multi-iteration runs degrade gracefully —
        // the multi-iteration total stays within a small multiple of the
        // single-pass total, far from the order-of-magnitude cliff of the
        // alternatives.
        let spec = SystemSpec::scaled(8192);
        let (one_pass, h1, _) = small_run(4 << 20);
        let (multi, h2, _) = small_run(8 * 1024);
        let t1 = gpu_total_time(&one_pass, &h1, &spec).total;
        let t2 = gpu_total_time(&multi, &h2, &spec).total;
        let ratio = t2.ratio(t1);
        assert!(
            ratio < 6.0,
            "degradation must be graceful, got {ratio:.1}x over {} iterations",
            multi.n_iterations()
        );
    }
}
