//! Assembling simulated end-to-end times from run accounting.
//!
//! The paper's execution times "include the input data transfer from CPU to
//! GPU and transfer of the hash table from GPU to CPU" (§VI-B); the GPU
//! total therefore composes, per SEPO iteration, the BigKernel-pipelined
//! overlap of input chunk uploads with kernel execution, plus the
//! iteration-boundary heap eviction transfer, plus (once per run) the
//! serialized-atomic contention penalty.

use gpu_sim::clock::SimTime;
use gpu_sim::cost::{CpuCostModel, GpuCostModel};
use gpu_sim::metrics::{ContentionHistogram, Metrics, Snapshot};
use gpu_sim::pcie::PcieBus;
use gpu_sim::pipeline::{pipelined_total, serial_total};
use gpu_sim::spec::SystemSpec;
use sepo_core::sepo::SepoOutcome;
use std::sync::Arc;

/// Breakdown of a simulated GPU run.
#[derive(Debug, Clone, Copy)]
pub struct GpuTiming {
    /// End-to-end simulated time.
    pub total: SimTime,
    /// Kernel execution (compute/memory/divergence), all iterations.
    pub kernel: SimTime,
    /// Input upload time hidden or exposed by the pipeline, plus eviction
    /// and final result downloads.
    pub transfers: SimTime,
    /// Serialized-atomic contention penalty.
    pub contention: SimTime,
    /// SEPO iterations.
    pub iterations: u32,
}

fn empty_hist() -> ContentionHistogram {
    ContentionHistogram::from_counts(std::iter::empty::<u64>())
}

/// Per-iteration simulated costs of one device's SEPO run: the pipelined
/// upload/kernel segment, the boundary eviction DMA, and the raw kernel
/// time, plus the final result download.
struct IterationCosts {
    segments: Vec<SimTime>,
    evictions: Vec<SimTime>,
    kernels: Vec<SimTime>,
    final_download: SimTime,
}

fn iteration_costs(outcome: &SepoOutcome, gpu: &GpuCostModel, bus: &PcieBus) -> IterationCosts {
    let n = outcome.iterations.len();
    let mut costs = IterationCosts {
        segments: Vec::with_capacity(n),
        evictions: Vec::with_capacity(n),
        kernels: Vec::with_capacity(n),
        final_download: SimTime::ZERO,
    };
    for iter in &outcome.iterations {
        let k = gpu.kernel_time(&iter.kernel, &empty_hist());
        costs.kernels.push(k);
        let chunks = iter.chunks.max(1) as usize;
        let per_chunk_upload = bus.bulk_transfer_time(iter.input_bytes / chunks as u64);
        let per_chunk_kernel = k / chunks as u64;
        let uploads = vec![per_chunk_upload; chunks];
        let kernels = vec![per_chunk_kernel; chunks];
        costs.segments.push(pipelined_total(&uploads, &kernels));
        costs.evictions.push(if iter.evict.evicted_bytes > 0 {
            bus.bulk_transfer_time(iter.evict.evicted_bytes)
        } else {
            SimTime::ZERO
        });
    }
    if outcome.final_evict.evicted_bytes > 0 {
        costs.final_download = bus.bulk_transfer_time(outcome.final_evict.evicted_bytes);
    }
    costs
}

/// Simulated end-to-end time of a SEPO GPU run.
pub fn gpu_total_time(
    outcome: &SepoOutcome,
    contention: &ContentionHistogram,
    spec: &SystemSpec,
) -> GpuTiming {
    let gpu = GpuCostModel::new(spec.device.clone());
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    let costs = iteration_costs(outcome, &gpu, &bus);
    let kernel_total = costs.kernels.iter().fold(SimTime::ZERO, |acc, &k| acc + k);
    let segments = costs.segments;
    let evictions = costs.evictions;
    // Compose each iteration's pipelined upload/kernel segment with its
    // boundary eviction. Synchronous boundaries alternate strictly:
    // segment, eviction, segment, … With `evict_overlap` the eviction pipe
    // lets boundary i's DMA drain behind segment i+1, which is exactly the
    // BigKernel makespan recurrence with segments as the "transfer" lane
    // and evictions as the "compute" lane:
    // s_1 + Σ max(s_i, e_{i-1}) + e_n.
    let body = if outcome.evict_overlap {
        pipelined_total(&segments, &evictions)
    } else {
        serial_total(&segments, &evictions)
    };
    let final_download = costs.final_download;
    let contention_t = gpu.contention_time(contention);
    let transfer_total = (body - kernel_total) + final_download;
    let total = body + final_download + contention_t;
    GpuTiming {
        total,
        kernel: kernel_total,
        transfers: transfer_total,
        contention: contention_t,
        iterations: outcome.n_iterations(),
    }
}

/// Simulated end-to-end time of a hash-prefix-sharded run across N
/// simulated devices.
///
/// Shards execute concurrently (each is its own device + bus) and
/// synchronize at iteration boundaries — the router hands every shard its
/// iteration-i batch before any shard starts iteration i+1 — so the
/// sharded clock is the per-iteration **makespan max** across shards of
/// that iteration's pipelined segment plus boundary eviction, composed
/// across iterations exactly like the single-device case (serial or
/// `evict_overlap`-pipelined). A shard that finished early contributes
/// zero to later iterations. The final result download and the
/// serialized-atomic contention penalty happen concurrently per device,
/// so they too enter as maxima.
pub fn sharded_total_time(
    shards: &[(&SepoOutcome, &ContentionHistogram)],
    spec: &SystemSpec,
) -> GpuTiming {
    assert!(!shards.is_empty(), "at least one shard");
    let gpu = GpuCostModel::new(spec.device.clone());
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    let per_shard: Vec<IterationCosts> = shards
        .iter()
        .map(|(o, _)| iteration_costs(o, &gpu, &bus))
        .collect();
    let n_iters = per_shard.iter().map(|c| c.segments.len()).max().unwrap();
    let max_at = |field: fn(&IterationCosts) -> &[SimTime], i: usize| {
        per_shard
            .iter()
            .map(|c| field(c).get(i).copied().unwrap_or(SimTime::ZERO))
            .max()
            .unwrap_or(SimTime::ZERO)
    };
    let segments: Vec<SimTime> = (0..n_iters).map(|i| max_at(|c| &c.segments, i)).collect();
    let evictions: Vec<SimTime> = (0..n_iters).map(|i| max_at(|c| &c.evictions, i)).collect();
    let kernel_total = (0..n_iters).fold(SimTime::ZERO, |acc, i| acc + max_at(|c| &c.kernels, i));
    let evict_overlap = shards.iter().all(|(o, _)| o.evict_overlap);
    let body = if evict_overlap {
        pipelined_total(&segments, &evictions)
    } else {
        serial_total(&segments, &evictions)
    };
    let final_download = per_shard
        .iter()
        .map(|c| c.final_download)
        .max()
        .unwrap_or(SimTime::ZERO);
    let contention_t = shards
        .iter()
        .map(|(_, h)| gpu.contention_time(h))
        .max()
        .unwrap_or(SimTime::ZERO);
    let transfer_total = (body - kernel_total) + final_download;
    let total = body + final_download + contention_t;
    GpuTiming {
        total,
        kernel: kernel_total,
        transfers: transfer_total,
        contention: contention_t,
        iterations: n_iters as u32,
    }
}

/// Simulated time of a CPU multi-threaded run (no transfers, host rates,
/// 8-thread contention threshold).
pub fn cpu_total_time(
    snapshot: &Snapshot,
    contention: &ContentionHistogram,
    spec: &SystemSpec,
) -> SimTime {
    CpuCostModel::new(spec.host.clone()).phase_time(snapshot, contention)
}

/// Simulated time of a single-pass GPU run described only by its event
/// snapshot (used for the MapCG baseline, which has no SEPO iteration
/// structure): pipelined input upload overlapping the kernel, one result
/// download, plus contention.
pub fn single_pass_gpu_time(
    snapshot: &Snapshot,
    contention: &ContentionHistogram,
    input_bytes: u64,
    output_bytes: u64,
    spec: &SystemSpec,
) -> SimTime {
    let gpu = GpuCostModel::new(spec.device.clone());
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    let kernel = gpu.kernel_time(snapshot, &empty_hist());
    let upload = bus.bulk_transfer_time(input_bytes);
    let download = bus.bulk_transfer_time(output_bytes);
    upload.max(kernel) + download + gpu.contention_time(contention)
}

/// Simulated time of a pinned-CPU-memory-heap run (Fig. 7): kernels at GPU
/// rates, heap traffic as small PCIe transactions, input uploaded once.
pub fn pinned_total_time(
    snapshot: &Snapshot,
    contention: &ContentionHistogram,
    input_bytes: u64,
    spec: &SystemSpec,
) -> SimTime {
    let gpu = GpuCostModel::new(spec.device.clone());
    let bus = PcieBus::new(spec.pcie.clone(), Arc::new(Metrics::new()));
    // Kernel-side work without the remote traffic (which the snapshot
    // already routed into the pcie_small counters).
    let kernel = gpu.kernel_time(snapshot, &empty_hist());
    // Remote heap accesses: GPU memory-level parallelism keeps on the
    // order of a hundred small transactions in flight across the bus.
    let remote = bus.small_transactions_time(
        snapshot.pcie_small_transactions,
        snapshot.pcie_small_bytes,
        96,
    );
    let upload = bus.bulk_transfer_time(input_bytes);
    let contention_t = gpu.contention_time(contention);
    upload.max(kernel) + remote + contention_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::executor::{ExecMode, Executor};
    use sepo_apps::{pvc, AppConfig};
    use sepo_datagen::App;

    fn small_run_cfg(heap: u64, overlap: bool) -> (SepoOutcome, ContentionHistogram, u64) {
        let ds = App::PageViewCount.generate(0, 8192);
        let metrics = Arc::new(Metrics::new());
        let exec = Executor::new(ExecMode::Deterministic, Arc::clone(&metrics));
        let run = pvc::run(
            &ds,
            &AppConfig::new(heap).with_evict_overlap(overlap),
            &exec,
        );
        let hist = run.table.contention_histogram();
        (run.outcome, hist, ds.size_bytes())
    }

    fn small_run(heap: u64) -> (SepoOutcome, ContentionHistogram, u64) {
        small_run_cfg(heap, false)
    }

    #[test]
    fn gpu_timing_composes_positive_terms() {
        let spec = SystemSpec::scaled(8192);
        let (outcome, hist, _) = small_run(1 << 20);
        let t = gpu_total_time(&outcome, &hist, &spec);
        assert!(t.total > SimTime::ZERO);
        assert!(t.kernel > SimTime::ZERO);
        assert!(t.transfers > SimTime::ZERO);
        assert!(t.total >= t.kernel);
        assert_eq!(t.iterations, outcome.n_iterations());
    }

    #[test]
    fn more_iterations_cost_more_time() {
        let spec = SystemSpec::scaled(8192);
        let (one_pass, h1, _) = small_run(4 << 20);
        let (multi, h2, _) = small_run(8 * 1024);
        assert!(multi.n_iterations() > one_pass.n_iterations());
        let t1 = gpu_total_time(&one_pass, &h1, &spec);
        let t2 = gpu_total_time(&multi, &h2, &spec);
        assert!(
            t2.total > t1.total,
            "extra SEPO iterations must cost simulated time: {} vs {}",
            t2.total,
            t1.total
        );
    }

    #[test]
    fn overlapped_eviction_prices_below_serial_on_identical_trajectories() {
        let spec = SystemSpec::scaled(8192);
        let (serial, hs, _) = small_run_cfg(8 * 1024, false);
        let (overlap, ho, _) = small_run_cfg(8 * 1024, true);
        assert!(serial.n_iterations() > 1, "the fixture must evict");
        assert_eq!(
            serial.iterations, overlap.iterations,
            "the pipe must not change the trajectory it prices"
        );
        let ts = gpu_total_time(&serial, &hs, &spec);
        let to = gpu_total_time(&overlap, &ho, &spec);
        assert_eq!(ts.kernel, to.kernel);
        assert!(
            to.total < ts.total,
            "hiding eviction DMA behind compute must save simulated time: \
             {} vs {}",
            to.total,
            ts.total
        );
        // The saving is bounded by what was eligible for hiding: the
        // overlapped makespan can never drop below the segments alone.
        assert!(to.total >= ts.kernel);
    }

    #[test]
    fn one_shard_prices_exactly_like_the_single_device_model() {
        let spec = SystemSpec::scaled(8192);
        let (outcome, hist, _) = small_run(8 * 1024);
        let single = gpu_total_time(&outcome, &hist, &spec);
        let sharded = sharded_total_time(&[(&outcome, &hist)], &spec);
        assert_eq!(sharded.total, single.total);
        assert_eq!(sharded.kernel, single.kernel);
        assert_eq!(sharded.iterations, single.iterations);
    }

    #[test]
    fn identical_shards_share_one_makespan() {
        // Two devices doing exactly the same work in parallel finish when
        // either one would alone: the per-iteration max of equals.
        let spec = SystemSpec::scaled(8192);
        let (outcome, hist, _) = small_run(8 * 1024);
        let single = gpu_total_time(&outcome, &hist, &spec);
        let two = sharded_total_time(&[(&outcome, &hist), (&outcome, &hist)], &spec);
        assert_eq!(two.total, single.total);
    }

    #[test]
    fn uneven_shards_price_at_the_slowest() {
        // A fast shard (fewer iterations) rides along for free; the
        // makespan equals the slow shard's own total.
        let spec = SystemSpec::scaled(8192);
        let (slow, hs, _) = small_run(8 * 1024);
        let (fast, hf, _) = small_run(4 << 20);
        assert!(slow.n_iterations() > fast.n_iterations());
        let slow_alone = gpu_total_time(&slow, &hs, &spec);
        let both = sharded_total_time(&[(&slow, &hs), (&fast, &hf)], &spec);
        assert_eq!(both.iterations, slow_alone.iterations);
        assert!(both.total >= slow_alone.total);
        // The fast shard only adds where its per-iteration cost exceeds
        // the slow one's — bounded by its own single-device total.
        let fast_alone = gpu_total_time(&fast, &hf, &spec);
        assert!(both.total <= slow_alone.total + fast_alone.total);
    }

    #[test]
    fn graceful_degradation_not_cliff() {
        // The headline claim: multi-iteration runs degrade gracefully —
        // the multi-iteration total stays within a small multiple of the
        // single-pass total, far from the order-of-magnitude cliff of the
        // alternatives.
        let spec = SystemSpec::scaled(8192);
        let (one_pass, h1, _) = small_run(4 << 20);
        let (multi, h2, _) = small_run(8 * 1024);
        let t1 = gpu_total_time(&one_pass, &h1, &spec).total;
        let t2 = gpu_total_time(&multi, &h2, &spec).total;
        let ratio = t2.ratio(t1);
        assert!(
            ratio < 6.0,
            "degradation must be graceful, got {ratio:.1}x over {} iterations",
            multi.n_iterations()
        );
    }
}
