//! # sepo-bench — the evaluation harness (§VI)
//!
//! Regenerates every table and figure of the paper from real runs of the
//! system and its baselines:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table I — dataset inventory |
//! | `figure6` | Fig. 6 — speedup over CPU multi-threaded / Phoenix++, iteration counts |
//! | `table2` | Table II — speedup over MapCG |
//! | `figure7` | Fig. 7 — SEPO vs pinned-CPU-memory heap |
//! | `table3` | Table III — demand-paging lower bounds vs SEPO total time |
//! | `ablation_group_size` | §IV-A bucket-group trade-off |
//! | `ablation_threshold` | §IV-C halt-threshold (50%) choice |
//! | `ablation_wc_keys` | §VI-B Word Count distinct-key sensitivity |
//! | `ablation_pipeline` | BigKernel overlap vs serial transfers |
//!
//! All reported durations are **simulated** ([`gpu_sim::SimTime`]) —
//! deterministic functions of counted events through the calibrated cost
//! models — while iteration counts, postponements and transfer volumes come
//! from real execution. Set `SEPO_SCALE` (default 256) to change the 1/N
//! capacity/dataset scale.

pub mod harness;
pub mod report;
pub mod timing;

pub use harness::{host_parallelism, single_cpu_warning, REGRESSION_SCALE};
pub use report::{write_json, write_json_mirrored, Table};
pub use timing::{
    cpu_total_time, gpu_total_time, pinned_total_time, sharded_total_time, GpuTiming,
};

use gpu_sim::spec::SystemSpec;

/// The capacity/dataset scale divisor (`SEPO_SCALE`, default 256).
pub fn scale() -> u64 {
    std::env::var("SEPO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(256)
}

/// The system spec at the active scale.
pub fn system() -> SystemSpec {
    SystemSpec::scaled(scale())
}

/// Fraction of device memory available to the hash-table heap after the
/// bucket array, locks, staging buffers and bitmaps take their share
/// (paper fn. 8: "its memory is shared among different data structures and
/// thus each data structure is given a smaller space").
pub const HEAP_FRACTION: f64 = 0.45;

/// Device heap bytes for the active scale.
pub fn device_heap(spec: &SystemSpec) -> u64 {
    (spec.device.memory_bytes as f64 * HEAP_FRACTION) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_reads_env_with_default() {
        if std::env::var("SEPO_SCALE").is_err() {
            assert_eq!(scale(), 256);
        }
    }

    #[test]
    fn device_heap_is_a_real_fraction() {
        let spec = SystemSpec::scaled(256);
        let heap = device_heap(&spec);
        assert!(heap > 0);
        assert!(heap < spec.device.memory_bytes);
    }
}
