//! Shared scaffolding for the regression bench binaries.
//!
//! The `overlap`, `chaos`, `serving` and `shards` bins all follow the same
//! shape: run the seven §VI applications at the regression scale under the
//! parallel-deterministic executor with the cross-layer audit and the
//! shadow sanitizer on, capture a byte-comparable artifact bundle per run,
//! and exit non-zero when two runs that must be identical are not. This
//! module holds that shape once.

use gpu_sim::executor::{ExecMode, Executor};
use gpu_sim::metrics::{Metrics, Snapshot};
use gpu_sim::{FaultPlan, ShadowSanitizer};
use sepo_apps::{run_app, AppConfig, AppRun};
use sepo_datagen::{App, Dataset};
use std::sync::Arc;
use std::time::Instant;

/// Records-per-app scale divisor shared by the regression bins: small
/// enough for CI, large enough that the tight heaps they pick force
/// several SEPO iterations per app.
pub const REGRESSION_SCALE: u64 = 16_384;

/// The artifact bundle the identity gates compare: saved table image,
/// per-iteration completion trajectory, full metrics snapshot.
pub struct BenchRun {
    pub run: AppRun,
    pub image: Vec<u8>,
    pub trajectory: Vec<u64>,
    pub snapshot: Snapshot,
    /// Wall-clock (not simulated) seconds the run took.
    pub secs: f64,
}

impl BenchRun {
    pub fn iterations(&self) -> u32 {
        self.run.iterations()
    }
}

/// The regression executor: parallel-deterministic, shadow sanitizer
/// attached, optional fault plan. Fresh metrics; read them back via
/// [`Executor::metrics`].
pub fn standard_executor(faults: Option<FaultPlan>) -> Executor {
    let metrics = Arc::new(Metrics::new());
    let mut exec = Executor::new(ExecMode::ParallelDeterministic, metrics)
        .with_shadow(Arc::new(ShadowSanitizer::new()));
    if let Some(plan) = faults {
        exec = exec.with_faults(Arc::new(plan));
    }
    exec
}

/// The regression app config: audit + sanitize on, explicit heap/chunking.
pub fn standard_config(heap_bytes: u64, chunk_tasks: usize) -> AppConfig {
    AppConfig::new(heap_bytes)
        .with_chunk_tasks(chunk_tasks)
        .with_audit(true)
        .with_sanitize(true)
}

/// Run `app` and capture the identity-gate artifact bundle.
pub fn instrumented_run(app: App, ds: &Dataset, cfg: &AppConfig, exec: &Executor) -> BenchRun {
    let start = Instant::now();
    let run = run_app(app, ds, cfg, exec);
    let secs = start.elapsed().as_secs_f64();
    let mut image = Vec::new();
    run.table.save(&mut image).expect("save table image");
    BenchRun {
        trajectory: trajectory_of(&run),
        snapshot: exec.metrics().snapshot(),
        secs,
        image,
        run,
    }
}

/// Per-iteration completed-task counts — the trajectory the identity gates
/// compare.
pub fn trajectory_of(run: &AppRun) -> Vec<u64> {
    run.outcome
        .iterations
        .iter()
        .map(|i| i.tasks_completed)
        .collect()
}

/// Gate helper: prints the standard `FAIL:` line when `ok` is false and
/// passes `ok` through, so call sites read
/// `failed |= !require(app.name(), "table image identical", image_ok)`.
pub fn require(app: &str, what: &str, ok: bool) -> bool {
    if !ok {
        eprintln!("FAIL: {app}: {what}");
    }
    ok
}

/// CPUs the host exposes (1 when the query fails). Stamped into bench
/// reports so a single-CPU container's timings are interpretable.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Warn (visibly, on stderr) when the host exposes a single CPU: wall-clock
/// comparisons and parallel-shard overlap are meaningless there. Returns
/// the warning for stamping into the report, `None` on multi-CPU hosts.
pub fn single_cpu_warning(bench: &str) -> Option<String> {
    if host_parallelism() > 1 {
        return None;
    }
    let warning = format!(
        "{bench}: host exposes 1 CPU; wall-clock figures reflect serialized \
         execution (simulated times are unaffected)"
    );
    eprintln!("WARN: {warning}");
    Some(warning)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumented_run_captures_consistent_artifacts() {
        let ds = App::PageViewCount.generate(0, 65_536);
        let exec = standard_executor(None);
        let cfg = standard_config(1 << 20, 512);
        let a = instrumented_run(App::PageViewCount, &ds, &cfg, &exec);
        assert_eq!(a.trajectory.len(), a.iterations() as usize);
        assert!(!a.image.is_empty());
        // A second identical run must be byte-identical — the property all
        // the regression bins build on.
        let exec2 = standard_executor(None);
        let b = instrumented_run(App::PageViewCount, &ds, &cfg, &exec2);
        assert_eq!(a.image, b.image);
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.snapshot, b.snapshot);
    }

    #[test]
    fn require_passes_ok_through() {
        assert!(require("app", "gate", true));
        assert!(!require("app", "gate", false));
    }

    #[test]
    fn host_parallelism_is_positive() {
        assert!(host_parallelism() >= 1);
        // On a multi-CPU host the warning is None; on 1 CPU it names the
        // bench. Either way the call must not panic.
        let w = single_cpu_warning("test-bench");
        assert_eq!(w.is_some(), host_parallelism() == 1);
    }
}
